// Package trace records structured execution events emitted by the fastnet
// runtimes. Traces feed the experiment harness and the causal-message
// analysis of the paper's appendix (internal/causal).
package trace

import (
	"sync"

	"fastnet/internal/graph"
)

// Kind enumerates event types.
type Kind int

// Event kinds. Send is recorded once per routed packet (a multicast of k
// routes records k sends sharing one activation). The KindFault* kinds are
// emitted by the lossy-link model (core.MsgFaults): the event's Node is the
// switching subsystem whose outgoing traversal was perturbed, and Cause
// carries the fault tag ("drop", "dup", "corrupt", "jitter", "reorder",
// "slow").
const (
	KindSend Kind = iota + 1
	KindDeliver
	KindInject
	KindDrop
	KindLinkEvent
	KindFaultDrop
	KindFaultDup
	KindFaultCorrupt
	KindFaultJitter
	KindFaultReorder
	KindFaultSlow
	// The KindCap* kinds are emitted by the capacity model (core.Capacity):
	// KindCapQueueDrop when an activation is rejected at a full NCU service
	// queue, KindCapLinkDrop when a traversal finds its directed link's token
	// bucket empty. The event's Node is the NCU (queue) or the switching
	// subsystem at the link's tail (link).
	KindCapQueueDrop
	KindCapLinkDrop
)

// Event is one runtime occurrence. Act identifies the NCU activation in
// which the event happened: for KindDeliver/KindInject/KindLinkEvent it is
// the activation performing the receive; for KindSend it is the activation
// that issued the send (0 when sent from outside any activation). Msg is a
// run-unique message ID linking each send to its deliveries; copies of one
// packet share the Msg of their send, as do fault-injected duplicates.
// Cause is empty except on fault events, where it names the perturbation.
type Event struct {
	Kind  Kind
	Time  int64
	Node  graph.NodeID
	Act   int64
	Msg   int64
	Cause string
}

// Sink consumes events. Implementations must be safe for concurrent use by
// the goroutine runtime.
type Sink interface {
	Record(Event)
}

// Buffer is an in-memory Sink.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Record appends e.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = append(b.events, e)
}

// Events returns a snapshot of the recorded events in record order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Reset discards all recorded events.
func (b *Buffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = b.events[:0]
}

// Serial is an in-memory Sink for single-threaded producers: Record is a
// plain append with no lock, which matters on the discrete-event runtime
// where every event of a run goes through one goroutine. Not safe for
// concurrent use — the goroutine runtime keeps using Buffer.
type Serial struct {
	events []Event
}

// NewSerial returns an empty serial sink with room for n events before the
// first growth (n <= 0 reserves nothing).
func NewSerial(n int) *Serial {
	if n <= 0 {
		return &Serial{}
	}
	return &Serial{events: make([]Event, 0, n)}
}

// Record implements Sink.
func (s *Serial) Record(e Event) { s.events = append(s.events, e) }

// Events returns a snapshot of the recorded events in record order.
func (s *Serial) Events() []Event { return append([]Event(nil), s.events...) }

// Len returns the number of recorded events.
func (s *Serial) Len() int { return len(s.events) }

// Reset discards all recorded events, keeping the backing array.
func (s *Serial) Reset() { s.events = s.events[:0] }

// Discard is a Sink that drops everything; used when tracing is off.
type Discard struct{}

// Record implements Sink.
func (Discard) Record(Event) {}

// PerNode projects a trace onto its nodes: events grouped by Event.Node,
// preserving stream order within each node. The projection is the
// per-observer view of an execution — what one NCU and its switching
// subsystem saw, in the order they saw it — and is the comparison unit of
// the cut-through differential tests: executions that interleave
// differently across nodes but look identical to every observer are
// behaviorally equivalent.
func PerNode(events []Event) map[graph.NodeID][]Event {
	byNode := make(map[graph.NodeID][]Event)
	for _, e := range events {
		byNode[e.Node] = append(byNode[e.Node], e)
	}
	return byNode
}
