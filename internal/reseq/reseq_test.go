package reseq_test

import (
	"math/rand"
	"testing"

	"fastnet/internal/anr"
	"fastnet/internal/core"
	"fastnet/internal/graph"
	"fastnet/internal/reseq"
	"fastnet/internal/sim"
)

const streamCount = 40

// reorderProfile is the reordered-channel fault config the differential
// suite runs under: no loss, heavy FIFO violation.
func reorderProfile() core.MsgFaults {
	return core.MsgFaults{Reorder: 0.3, ReorderWindow: 25}
}

// runStreams drives the stream exerciser on g under opts and returns the
// per-node ledger lines plus the run's metrics.
func runStreams(t *testing.T, g *graph.Graph, factory core.Factory, opts ...sim.Option) ([]string, core.Metrics, *sim.Network) {
	t.Helper()
	net := sim.New(g, factory, opts...)
	for u := 0; u < g.N(); u++ {
		net.Inject(0, core.NodeID(u), reseq.Start{Count: streamCount})
	}
	if _, err := net.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := make([]string, g.N())
	for u := 0; u < g.N(); u++ {
		lines[u] = reseq.StreamOf(net.Protocol(core.NodeID(u))).LedgerLine()
	}
	return lines, net.Metrics(), net
}

// TestReorderBreaksFIFOWithoutResequencer proves the fault dimension is
// load-bearing: under reorder faults an unwrapped stream observes per-link
// order violations.
func TestReorderBreaksFIFOWithoutResequencer(t *testing.T) {
	g := graph.GNP(16, 0.3, 11)
	lines, m, net := runStreams(t, g, reseq.StreamFactory(),
		sim.WithDelays(3, 1), sim.WithRandomDelays(), sim.WithSeed(11),
		sim.WithMsgFaults(reorderProfile()))
	_ = lines
	if m.FaultReorders == 0 {
		t.Fatalf("reorder profile never fired: %v", m)
	}
	violations := 0
	for u := 0; u < g.N(); u++ {
		violations += len(reseq.StreamOf(net.Protocol(core.NodeID(u))).Violations())
	}
	if violations == 0 {
		t.Fatalf("expected FIFO violations under reorder faults (reorders=%d)", m.FaultReorders)
	}
}

// TestResequencedMatchesFIFO is the differential contract of the sublayer:
// a wrapped (resequenced) stream under reorder faults + randomized delays
// produces per-link ledgers byte-identical to the exact-delay FIFO run, and
// the activation-count metrics agree exactly.
func TestResequencedMatchesFIFO(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := graph.GNP(16, 0.3, seed)
		wrapped := reseq.WrapFactory(reseq.StreamFactory(), reseq.Config{Window: 256})

		fifoLines, fifoM, _ := runStreams(t, g, wrapped,
			sim.WithDelays(3, 1), sim.WithSeed(seed))
		reordLines, reordM, net := runStreams(t, g, wrapped,
			sim.WithDelays(3, 1), sim.WithRandomDelays(), sim.WithSeed(seed),
			sim.WithMsgFaults(reorderProfile()))

		if reordM.FaultReorders == 0 {
			t.Fatalf("seed %d: reorder profile never fired", seed)
		}
		repaired := int64(0)
		for u := 0; u < g.N(); u++ {
			nd := net.Protocol(core.NodeID(u)).(*reseq.Node)
			st := nd.Stats()
			repaired += st.Released
			if st.Forced > 0 {
				t.Errorf("seed %d node %d: forced release under pure reordering: %s", seed, u, st)
			}
		}
		if repaired == 0 {
			t.Fatalf("seed %d: resequencer never had to repair order (reorders=%d)", seed, reordM.FaultReorders)
		}
		for u := range fifoLines {
			if fifoLines[u] != reordLines[u] {
				t.Errorf("seed %d node %d ledgers diverge\n fifo %s\nreord %s", seed, u, fifoLines[u], reordLines[u])
			}
		}
		// The activation economy must match too: reordering delays packets
		// but the resequenced run performs the same sends, hops, and
		// deliveries as the FIFO run.
		if fifoM.Sends != reordM.Sends || fifoM.Hops != reordM.Hops ||
			fifoM.Deliveries != reordM.Deliveries || fifoM.Packets != reordM.Packets {
			t.Errorf("seed %d metrics diverge\n fifo %s\nreord %s", seed, fifoM, reordM)
		}
	}
}

// fakeEnv is a minimal Env for unit-testing the valves without a runtime.
type fakeEnv struct {
	sent []any
	rng  *rand.Rand
}

func (e *fakeEnv) ID() core.NodeID                          { return 0 }
func (e *fakeEnv) Ports() []core.Port                       { return nil }
func (e *fakeEnv) PortToward(core.NodeID) (core.Port, bool) { return core.Port{}, false }
func (e *fakeEnv) Send(h anr.Header, pl any) error          { e.sent = append(e.sent, pl); return nil }
func (e *fakeEnv) Multicast(hs []anr.Header, pl any) error  { e.sent = append(e.sent, pl); return nil }
func (e *fakeEnv) Now() core.Time                           { return 0 }
func (e *fakeEnv) Rand() *rand.Rand                         { return e.rng }

// sink records the delivery order the inner protocol saw.
type sink struct{ got []int }

func (s *sink) Init(core.Env)                 {}
func (s *sink) LinkEvent(core.Env, core.Port) {}
func (s *sink) RequiresFIFO() bool            { return true }
func (s *sink) Deliver(_ core.Env, p core.Packet) {
	s.got = append(s.got, p.Payload.(int))
}

func frame(seq uint64) core.Packet {
	return core.Packet{Payload: &reseq.Frame{Seq: seq, Payload: int(seq)}, ArrivedOn: 1}
}

func TestResequenceAndStale(t *testing.T) {
	inner := &sink{}
	nd := reseq.Wrap(inner, reseq.Config{})
	env := &fakeEnv{rng: rand.New(rand.NewSource(1))}
	nd.Deliver(env, frame(2))
	nd.Deliver(env, frame(3))
	if len(inner.got) != 0 {
		t.Fatalf("early frames leaked: %v", inner.got)
	}
	nd.Deliver(env, frame(1))
	if want := []int{1, 2, 3}; len(inner.got) != 3 || inner.got[0] != 1 || inner.got[1] != 2 || inner.got[2] != 3 {
		t.Fatalf("resequenced order = %v, want %v", inner.got, want)
	}
	nd.Deliver(env, frame(2)) // duplicate / late
	st := nd.Stats()
	if st.Stale != 1 || st.Released != 2 || st.InOrder != 1 || st.Buffered != 2 {
		t.Fatalf("stats = %s", st)
	}
}

func TestOverflowValve(t *testing.T) {
	inner := &sink{}
	nd := reseq.Wrap(inner, reseq.Config{Window: 2})
	env := &fakeEnv{rng: rand.New(rand.NewSource(1))}
	// Seq 1 never arrives; the third buffered frame trips the valve.
	nd.Deliver(env, frame(2))
	nd.Deliver(env, frame(3))
	nd.Deliver(env, frame(4))
	if len(inner.got) != 3 || inner.got[0] != 2 || inner.got[2] != 4 {
		t.Fatalf("forced release delivered %v, want [2 3 4]", inner.got)
	}
	nd.Deliver(env, frame(1)) // the abandoned gap arrives late
	st := nd.Stats()
	if st.Forced != 1 || st.Stale != 1 {
		t.Fatalf("stats = %s", st)
	}
	if len(inner.got) != 3 {
		t.Fatalf("stale frame leaked: %v", inner.got)
	}
}

func TestAgeValve(t *testing.T) {
	inner := &sink{}
	nd := reseq.Wrap(inner, reseq.Config{HoldTicks: 2})
	env := &fakeEnv{rng: rand.New(rand.NewSource(1))}
	nd.Deliver(env, frame(5))
	for i := 0; i < 3; i++ {
		nd.Deliver(env, core.Packet{Payload: reseq.Tick{}})
	}
	if len(inner.got) != 1 || inner.got[0] != 5 {
		t.Fatalf("age valve delivered %v, want [5]", inner.got)
	}
	if st := nd.Stats(); st.Forced != 1 {
		t.Fatalf("stats = %s", st)
	}
}

// TestWrapFactory checks capability detection: only protocols declaring
// core.FIFORequirer come out wrapped.
func TestWrapFactory(t *testing.T) {
	plain := func(core.NodeID) core.Protocol { return &plainProto{} }
	if _, ok := reseq.WrapFactory(reseq.StreamFactory(), reseq.Config{})(0).(*reseq.Node); !ok {
		t.Fatal("FIFO-requiring protocol not wrapped")
	}
	if _, ok := reseq.WrapFactory(plain, reseq.Config{})(0).(*reseq.Node); ok {
		t.Fatal("non-declaring protocol wrapped")
	}
}

type plainProto struct{}

func (p *plainProto) Init(core.Env)                 {}
func (p *plainProto) Deliver(core.Env, core.Packet) {}
func (p *plainProto) LinkEvent(core.Env, core.Port) {}
