package reseq_test

import (
	"testing"

	"fastnet/internal/core"
	"fastnet/internal/election"
	"fastnet/internal/graph"
	"fastnet/internal/reseq"
	"fastnet/internal/sim"
)

// FuzzReorder throws randomized reorder profiles, delay regimes, and buffer
// geometries at the two consumers of the non-FIFO channel model:
//
//   - the resequencing sublayer, whose differential contract (reordered run
//     == FIFO run, per-link ledgers byte-identical) must hold whenever no
//     release valve fired, and which must never deliver out of order or
//     panic even when the valves do fire;
//   - the election, which must stay panic-free with a single full-domain
//     leader within the 6n bound no matter how channels reorder.
func FuzzReorder(f *testing.F) {
	f.Add(int64(1), byte(30), byte(25), byte(3), byte(1), byte(0), byte(64))
	f.Add(int64(7), byte(60), byte(39), byte(7), byte(8), byte(1), byte(2))
	f.Add(int64(0x19d0443), byte(10), byte(5), byte(0), byte(0), byte(1), byte(16))
	f.Add(int64(-9), byte(80), byte(12), byte(9), byte(4), byte(0), byte(1))
	f.Fuzz(func(t *testing.T, seed int64, pct, win, dC, dP, proto, bufWin byte) {
		profile := core.MsgFaults{
			Reorder:       float64(pct%81) / 100, // 0..0.8
			ReorderWindow: core.Time(win%40) + 1,
		}
		n := 12
		g := graph.GNP(n, 0.3, seed)
		if !g.Connected() {
			t.Skip("disconnected sample")
		}
		delays := []sim.Option{
			sim.WithDelays(core.Time(dC%10), core.Time(dP%10)+1),
			sim.WithRandomDelays(), sim.WithSeed(seed),
		}

		if proto%2 == 1 {
			// Election lane: the recovery paths must absorb any reordering.
			starters := make([]core.NodeID, n)
			for i := range starters {
				starters[i] = core.NodeID(i)
			}
			res, err := election.Run(g, election.AlgoToken, starters,
				append(delays, sim.WithMsgFaults(profile))...)
			if err != nil {
				t.Fatalf("seed=%d profile=%s: %v", seed, profile, err)
			}
			if res.LeaderDomain != n {
				t.Fatalf("seed=%d: leader domain %d, want %d", seed, res.LeaderDomain, n)
			}
			if res.AlgorithmMessages > int64(6*n) {
				t.Fatalf("seed=%d: messages %d > 6n", seed, res.AlgorithmMessages)
			}
			return
		}

		// Stream lane: differential against the FIFO reference run.
		const count = 12
		cfg := reseq.Config{Window: int(bufWin%64) + 1}
		run := func(opts ...sim.Option) (*sim.Network, []string) {
			net := sim.New(g, reseq.WrapFactory(reseq.StreamFactory(), cfg), opts...)
			for u := 0; u < n; u++ {
				net.Inject(0, core.NodeID(u), reseq.Start{Count: count})
			}
			if _, err := net.Run(); err != nil {
				t.Fatalf("seed=%d profile=%s: %v", seed, profile, err)
			}
			lines := make([]string, n)
			for u := 0; u < n; u++ {
				lines[u] = reseq.StreamOf(net.Protocol(core.NodeID(u))).LedgerLine()
			}
			return net, lines
		}
		_, fifoLines := run(sim.WithDelays(core.Time(dC%10), core.Time(dP%10)+1))
		net, lines := run(append(delays, sim.WithMsgFaults(profile))...)

		forced := int64(0)
		for u := 0; u < n; u++ {
			forced += net.Protocol(core.NodeID(u)).(*reseq.Node).Stats().Forced
		}
		if forced > 0 {
			// A valve fired (tiny Window vs aggressive reordering): order may
			// legitimately break, but the run completed and nothing panicked.
			return
		}
		for u := 0; u < n; u++ {
			if vs := reseq.StreamOf(net.Protocol(core.NodeID(u))).Violations(); len(vs) > 0 {
				t.Fatalf("seed=%d node %d: violations without forced release: %v", seed, u, vs)
			}
			if lines[u] != fifoLines[u] {
				t.Fatalf("seed=%d node %d: ledgers diverge without forced release\n fifo %s\nreord %s",
					seed, u, fifoLines[u], lines[u])
			}
		}
	})
}
