// Package reseq restores per-link FIFO delivery in software. The paper's §5
// pipelined protocols are the only ones that assume FIFO links; the runtimes
// do not guarantee it (randomized hardware delays and the reorder fault in
// core.MsgFaults both let later packets overtake earlier ones on the same
// link). A protocol that declares the core.FIFORequirer capability can be
// wrapped in a resequencing Node: every single-hop unicast send is stamped
// with a per-(link,direction) sequence number, and the receiving side holds
// out-of-order frames in a bounded buffer until the gap fills, releasing the
// stream to the inner protocol in send order.
//
// The sublayer is the channel-order sibling of internal/reliable's ARQ: it
// assumes frames eventually arrive (reordering, not loss) and buys back
// ordering, where reliable assumes order is irrelevant and buys back
// delivery. Under loss or corruption a missing sequence number would stall
// the stream forever, so the buffer has two release valves: overflow (more
// than Window frames held) and age (frames held longer than HoldTicks Tick
// injections). Both give up on the gap and release in seq order — FIFO
// degrades instead of deadlocking, and the Forced counter makes the
// degradation visible.
//
// Scope: only single-hop unicast sends are stamped — neighbor streams, which
// is exactly the traffic shape of the §5 gather/dissemination trees.
// Multi-hop routes and multicasts pass through unstamped (their per-link
// interleavings are not a FIFO stream to begin with); mixing unstamped and
// stamped traffic on one link forfeits ordering between the two classes but
// never blocks either.
package reseq

import (
	"fmt"

	"fastnet/internal/anr"
	"fastnet/internal/core"
)

// Frame is the wire envelope of one stamped send: the receiver's switching
// subsystem sees an opaque payload, the receiver's resequencer consumes Seq
// and hands Payload to the inner protocol in order. Seq is per
// (sender, outgoing link) starting at 1.
type Frame struct {
	Seq     uint64
	Payload any
}

// Tick is the resequencer's timeout clock: the driver (or host protocol)
// injects it periodically, and frames buffered for more than HoldTicks ticks
// are force-released. Without ticks only the overflow valve fires.
type Tick struct{}

// Config shapes the resequencing buffer.
type Config struct {
	// Window is the per-link bound on buffered out-of-order frames; holding
	// one more forces a release. 0 means DefaultWindow.
	Window int
	// HoldTicks force-releases frames buffered for more than this many Tick
	// injections. 0 disables the age valve (overflow still applies).
	HoldTicks int64
}

// DefaultWindow is the per-link buffer bound when Config.Window is 0.
const DefaultWindow = 32

func (c Config) window() int {
	if c.Window <= 0 {
		return DefaultWindow
	}
	return c.Window
}

// Stats counts the resequencer's work. All counters are per wrapped node.
type Stats struct {
	// Stamped counts sends wrapped in a Frame.
	Stamped int64
	// Passthrough counts deliveries handed to the inner protocol unshimmed
	// (non-frame payloads: injected starts, multi-hop traffic, multicast).
	Passthrough int64
	// InOrder counts frames that arrived already in order.
	InOrder int64
	// Buffered counts frames that arrived early and were held.
	Buffered int64
	// Released counts held frames delivered after their gap filled — each
	// one is a FIFO violation the sublayer repaired.
	Released int64
	// Forced counts gaps abandoned by the overflow/age valves; the frames
	// released behind a forced gap kept seq order but lost stream
	// continuity.
	Forced int64
	// Stale counts frames below the expected sequence number (late arrivals
	// behind an abandoned gap, or duplicates) that were discarded.
	Stale int64
}

type held struct {
	pkt core.Packet
	age int64 // tick count at buffering time
}

type linkState struct {
	next uint64 // next sequence number owed to the inner protocol
	buf  map[uint64]held
}

// Node wraps an inner protocol with the resequencing sublayer. It is itself
// a core.Protocol, so wrapped and unwrapped instances are interchangeable to
// the runtimes.
type Node struct {
	inner core.Protocol
	cfg   Config
	// sendSeq is the next stamp per outgoing local link.
	sendSeq map[anr.ID]uint64
	// recv is the reorder buffer per arrival link. Per-link state keyed by
	// the local arrival ID is per-(link,direction) state: the opposite
	// direction of the same physical link lives at the other endpoint.
	recv  map[anr.ID]*linkState
	ticks int64
	stats Stats
}

// Wrap builds the resequencing node around inner.
func Wrap(inner core.Protocol, cfg Config) *Node {
	return &Node{
		inner:   inner,
		cfg:     cfg,
		sendSeq: make(map[anr.ID]uint64),
		recv:    make(map[anr.ID]*linkState),
	}
}

// WrapFactory shims a factory: protocols declaring the core.FIFORequirer
// capability come out wrapped, everything else is returned untouched.
func WrapFactory(f core.Factory, cfg Config) core.Factory {
	return func(id core.NodeID) core.Protocol {
		p := f(id)
		if core.RequiresFIFO(p) {
			return Wrap(p, cfg)
		}
		return p
	}
}

// Inner returns the wrapped protocol (for test assertions on its state).
func (n *Node) Inner() core.Protocol { return n.inner }

// Stats returns a snapshot of the resequencer's counters.
func (n *Node) Stats() Stats { return n.stats }

// Init implements core.Protocol.
func (n *Node) Init(env core.Env) { n.inner.Init(&fifoEnv{Env: env, nd: n}) }

// LinkEvent implements core.Protocol.
func (n *Node) LinkEvent(env core.Env, port core.Port) {
	n.inner.LinkEvent(&fifoEnv{Env: env, nd: n}, port)
}

// Deliver implements core.Protocol: frames are resequenced per arrival link,
// ticks advance the age valve, everything else passes straight through.
func (n *Node) Deliver(env core.Env, pkt core.Packet) {
	renv := &fifoEnv{Env: env, nd: n}
	switch m := pkt.Payload.(type) {
	case Tick:
		n.tick(renv)
	case *Frame:
		n.onFrame(renv, pkt, m)
	default:
		n.stats.Passthrough++
		n.inner.Deliver(renv, pkt)
	}
}

func (n *Node) onFrame(renv *fifoEnv, pkt core.Packet, f *Frame) {
	st := n.recv[pkt.ArrivedOn]
	if st == nil {
		st = &linkState{next: 1, buf: make(map[uint64]held)}
		n.recv[pkt.ArrivedOn] = st
	}
	switch {
	case f.Seq < st.next:
		n.stats.Stale++
	case f.Seq == st.next:
		n.stats.InOrder++
		n.release(renv, pkt, f)
		st.next++
		n.drain(renv, st, false)
	default:
		// Early frame: keep the whole packet (the inner protocol may need
		// Reverse/ArrivedOn) until the gap fills.
		st.buf[f.Seq] = held{pkt: pkt, age: n.ticks}
		n.stats.Buffered++
		if len(st.buf) > n.cfg.window() {
			n.forceRelease(renv, st)
		}
	}
}

// release hands one resequenced packet to the inner protocol with the frame
// envelope stripped.
func (n *Node) release(renv *fifoEnv, pkt core.Packet, f *Frame) {
	pkt.Payload = f.Payload
	n.inner.Deliver(renv, pkt)
}

// drain delivers the contiguous run now available at st.next.
func (n *Node) drain(renv *fifoEnv, st *linkState, forced bool) {
	for {
		h, ok := st.buf[st.next]
		if !ok {
			return
		}
		delete(st.buf, st.next)
		f := h.pkt.Payload.(*Frame)
		if !forced {
			n.stats.Released++
		}
		n.release(renv, h.pkt, f)
		st.next++
	}
}

// forceRelease abandons the gap below the smallest buffered frame and drains
// from there: liveness over ordering. A late frame for the abandoned gap
// will arrive below next and be counted Stale.
func (n *Node) forceRelease(renv *fifoEnv, st *linkState) {
	var lo uint64
	for seq := range st.buf {
		if lo == 0 || seq < lo {
			lo = seq
		}
	}
	if lo == 0 {
		return
	}
	n.stats.Forced++
	st.next = lo
	n.drain(renv, st, true)
}

// tick advances the age clock and fires the age valve on every link holding
// frames older than HoldTicks. Links are visited in ascending ID order so
// discrete-event runs stay deterministic.
func (n *Node) tick(renv *fifoEnv) {
	n.ticks++
	if n.cfg.HoldTicks <= 0 {
		return
	}
	var links []anr.ID
	for l, st := range n.recv {
		if len(st.buf) > 0 {
			links = append(links, l)
		}
	}
	for i := 1; i < len(links); i++ {
		for j := i; j > 0 && links[j] < links[j-1]; j-- {
			links[j], links[j-1] = links[j-1], links[j]
		}
	}
	for _, l := range links {
		st := n.recv[l]
		for expired := true; expired && len(st.buf) > 0; {
			expired = false
			for _, h := range st.buf {
				if n.ticks-h.age > n.cfg.HoldTicks {
					expired = true
					break
				}
			}
			if expired {
				n.forceRelease(renv, st)
			}
		}
	}
}

// fifoEnv is the Env handed to the inner protocol: sends that form a
// neighbor stream (single-hop unicast) are stamped, everything else passes
// through. The stamp happens at send time, so the sequence numbers follow
// the inner protocol's send order exactly — which is the order the far-end
// resequencer restores.
type fifoEnv struct {
	core.Env
	nd *Node
}

// Send implements core.Env.
func (e *fifoEnv) Send(h anr.Header, payload any) error {
	if len(h) == 2 && h[0].Link != anr.NCU && !h[0].Copy && h[1].Link == anr.NCU {
		seq := e.nd.sendSeq[h[0].Link] + 1
		if err := e.Env.Send(h, &Frame{Seq: seq, Payload: payload}); err != nil {
			return err
		}
		e.nd.sendSeq[h[0].Link] = seq
		e.nd.stats.Stamped++
		return nil
	}
	return e.Env.Send(h, payload)
}

// String renders the stats for ledgers and test failure messages.
func (s Stats) String() string {
	return fmt.Sprintf("stamped=%d passthrough=%d inorder=%d buffered=%d released=%d forced=%d stale=%d",
		s.Stamped, s.Passthrough, s.InOrder, s.Buffered, s.Released, s.Forced, s.Stale)
}
