package reseq

import (
	"fmt"
	"sort"

	"fastnet/internal/anr"
	"fastnet/internal/core"
)

// Start triggers a Stream node: on receipt it sends Count numbered messages
// to every live neighbor, one single-hop unicast stream per link.
type Start struct{ Count int }

// Msg is one element of a neighbor stream; I runs 1..Count in send order.
type Msg struct {
	From core.NodeID
	I    int
}

// Stream is the canonical FIFO-requiring protocol: each node emits a
// numbered message stream to every neighbor and records arrivals per link in
// delivery order. Its correctness condition — every per-link ledger reads
// 1..Count ascending — holds on FIFO links and breaks under reordering,
// which makes it the exerciser of the differential resequencer suite: a
// wrapped Stream under reorder faults must produce ledgers byte-identical to
// an unwrapped Stream under exact (FIFO) delays.
type Stream struct {
	id      core.NodeID
	ledgers map[anr.ID][]int
}

// NewStream builds the exerciser for one node.
func NewStream(id core.NodeID) *Stream {
	return &Stream{id: id, ledgers: make(map[anr.ID][]int)}
}

// RequiresFIFO declares the capability (see core.FIFORequirer).
func (s *Stream) RequiresFIFO() bool { return true }

// Init implements core.Protocol.
func (s *Stream) Init(core.Env) {}

// LinkEvent implements core.Protocol.
func (s *Stream) LinkEvent(core.Env, core.Port) {}

// Deliver implements core.Protocol.
func (s *Stream) Deliver(env core.Env, pkt core.Packet) {
	switch m := pkt.Payload.(type) {
	case Start:
		for _, port := range env.Ports() {
			if !port.Up {
				continue
			}
			route := anr.Direct([]anr.ID{port.Local})
			for i := 1; i <= m.Count; i++ {
				if err := env.Send(route, Msg{From: s.id, I: i}); err != nil {
					panic(fmt.Sprintf("reseq stream: send on link %d: %v", port.Local, err))
				}
			}
		}
	case Msg:
		s.ledgers[pkt.ArrivedOn] = append(s.ledgers[pkt.ArrivedOn], m.I)
	}
}

// LedgerLine renders the per-link arrival ledgers on one canonical line
// (links in ascending ID order) — the byte-comparison unit of the
// differential tests. Cross-link interleaving is legitimately
// timing-dependent, so the ledger is per link, where FIFO is defined.
func (s *Stream) LedgerLine() string {
	links := make([]int, 0, len(s.ledgers))
	for l := range s.ledgers {
		links = append(links, int(l))
	}
	sort.Ints(links)
	out := ""
	for _, l := range links {
		out += fmt.Sprintf("l%d:%v;", l, s.ledgers[anr.ID(l)])
	}
	return out
}

// Violations returns every per-link ledger that is not the ascending run
// 1..len — the FIFO-correctness check used by the fuzz target (empty means
// the node saw perfectly ordered streams).
func (s *Stream) Violations() []string {
	var out []string
	for l, seq := range s.ledgers {
		for i, v := range seq {
			if v != i+1 {
				out = append(out, fmt.Sprintf("node %d link %d: pos %d holds %d (ledger %v)", s.id, l, i, v, seq))
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// StreamFactory builds a Stream per node; wrap with WrapFactory to get the
// resequenced variant.
func StreamFactory() core.Factory {
	return func(id core.NodeID) core.Protocol { return NewStream(id) }
}

// StreamOf unwraps the Stream behind a possibly-wrapped protocol instance.
func StreamOf(p core.Protocol) *Stream {
	if n, ok := p.(*Node); ok {
		p = n.Inner()
	}
	return p.(*Stream)
}
