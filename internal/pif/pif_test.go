package pif

import (
	"math/bits"
	"testing"
	"testing/quick"

	"fastnet/internal/anr"
	"fastnet/internal/core"
	"fastnet/internal/graph"
)

func TestPIFCompletes(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(16), graph.Star(16), graph.Ring(16),
		graph.RandomTree(50, 3), graph.GNP(50, 0.1, 4), graph.Grid(6, 6),
	} {
		res, err := Run(g, 0, EchoOptimal, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		n := int64(g.N())
		// Broadcast n-1 deliveries + echo n-1 acks (within a small
		// constant for queueing duplicates — there are none).
		if res.Metrics.Deliveries != 2*(n-1) {
			t.Fatalf("n=%d: deliveries = %d, want 2(n-1) = %d", n, res.Metrics.Deliveries, 2*(n-1))
		}
	}
}

func TestPIFSingleNode(t *testing.T) {
	res, err := Run(graph.New(1), 0, EchoOptimal, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish != 1 {
		t.Fatalf("finish = %d, want 1 (the injection activation)", res.Finish)
	}
}

func TestPIFOptimalEchoLogTime(t *testing.T) {
	// Both phases are logarithmic: finish within c*log2(n) for a generous c.
	for _, n := range []int{64, 256, 1024} {
		g := graph.RandomTree(n, 7)
		res, err := Run(g, 0, EchoOptimal, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		bound := core.Time(4 * (bits.Len(uint(n)) + 1))
		if res.Finish > bound {
			t.Fatalf("n=%d: finish = %d, want <= %d (O(log n))", n, res.Finish, bound)
		}
	}
}

func TestPIFDirectEchoLinearTime(t *testing.T) {
	// The ablation: direct acknowledgements serialize at the root.
	n := 256
	g := graph.RandomTree(n, 7)
	direct, err := Run(g, 0, EchoDirect, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	optimal, err := Run(g, 0, EchoOptimal, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Finish < core.Time(n-1) {
		t.Fatalf("direct finish = %d, want >= n-1 (root serialization)", direct.Finish)
	}
	if optimal.Finish*4 > direct.Finish {
		t.Fatalf("optimal %d not clearly faster than direct %d", optimal.Finish, direct.Finish)
	}
	// Same system-call budget in both modes.
	if direct.Metrics.Deliveries != optimal.Metrics.Deliveries {
		t.Fatalf("deliveries differ: %d vs %d", direct.Metrics.Deliveries, optimal.Metrics.Deliveries)
	}
}

func TestPIFUnderGeneralDelays(t *testing.T) {
	g := graph.GNP(40, 0.12, 9)
	res, err := Run(g, 3, EchoOptimal, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish <= res.BroadcastTime {
		t.Fatalf("finish %d must follow the broadcast %d", res.Finish, res.BroadcastTime)
	}
}

func TestPIFDisconnectedRejected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	if _, err := Run(g, 0, EchoOptimal, 0, 1); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestEchoModeString(t *testing.T) {
	if EchoOptimal.String() != "optimal-tree" || EchoDirect.String() != "direct-to-root" ||
		EchoMode(9).String() != "echo(9)" {
		t.Fatal("EchoMode.String mismatch")
	}
}

func TestTreeRouteLCA(t *testing.T) {
	// Tree: 0-1, 0-2, 1-3, 1-4. Route 3->4 goes up to 1 and down to 4;
	// route 3->2 crosses the root.
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(1, 4)
	pm := core.NewPortMap(g)
	bfs := g.BFSTree(0)
	var edges []TreeEdge
	for u := 1; u < 5; u++ {
		id := core.NodeID(u)
		par := bfs.Parent[id]
		down, _ := pm.Toward(par, id)
		up, _ := pm.Toward(id, par)
		edges = append(edges, TreeEdge{Child: id, Parent: par, Down: down, Up: up})
	}
	check := func(u, w core.NodeID, hops int) {
		t.Helper()
		h, err := treeRoute(edges, u, w)
		if err != nil {
			t.Fatal(err)
		}
		if h.HopCount() != hops {
			t.Fatalf("route %d->%d = %d hops, want %d", u, w, h.HopCount(), hops)
		}
		tr, err := core.WalkRoute(pm, func(core.NodeID, anr.ID) bool { return true }, u, h)
		if err != nil || tr.Dropped || tr.Deliveries[0].Node != w {
			t.Fatalf("route %d->%d did not execute: %+v err=%v", u, w, tr, err)
		}
	}
	check(3, 4, 2)
	check(3, 2, 3)
	check(4, 0, 2)
	check(0, 3, 2)
}

// Property: treeRoute between random pairs in random trees always executes
// and lands at the destination.
func TestTreeRouteQuick(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		const n = 22
		g := graph.RandomTree(n, seed)
		pm := core.NewPortMap(g)
		bfs := g.BFSTree(0)
		var edges []TreeEdge
		for u := 1; u < n; u++ {
			id := core.NodeID(u)
			par := bfs.Parent[id]
			down, _ := pm.Toward(par, id)
			up, _ := pm.Toward(id, par)
			edges = append(edges, TreeEdge{Child: id, Parent: par, Down: down, Up: up})
		}
		u, w := core.NodeID(a%n), core.NodeID(b%n)
		h, err := treeRoute(edges, u, w)
		if err != nil {
			return false
		}
		if u == w {
			return h.HopCount() == 0
		}
		tr, err := core.WalkRoute(pm, func(core.NodeID, anr.ID) bool { return true }, u, h)
		return err == nil && !tr.Dropped && len(tr.Deliveries) == 1 && tr.Deliveries[0].Node == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
