// Package pif implements propagation of information with feedback (PIF,
// broadcast-with-echo) under the paper's model — an answer to the
// conclusion's question "can other distributed algorithms be similarly
// improved?".
//
// The broadcast phase is §3's branching-paths scheme (n-1 system calls,
// O(log n) time). The echo phase is where the new model bites: letting
// every node acknowledge the root directly serializes n-1 activations at
// the root's NCU — O(n) time. Instead, the acknowledgements flow up a §5
// optimal aggregation tree (binomial in the C=0, P=1 regime) computed
// identically by every node from the broadcast's tree description: n-1
// more system calls, O(log n) more time. Both phases together: O(n) system
// calls and O(log n) time, where the pre-switching way costs O(m) and O(n).
package pif

import (
	"fmt"
	"sort"

	"fastnet/internal/anr"
	"fastnet/internal/core"
	"fastnet/internal/globalfn"
	"fastnet/internal/graph"
	"fastnet/internal/paths"
	"fastnet/internal/sim"
)

// EchoMode selects the feedback discipline.
type EchoMode int

// Echo disciplines.
const (
	// EchoOptimal aggregates acknowledgements over the §5 optimal tree.
	EchoOptimal EchoMode = iota + 1
	// EchoDirect lets every node acknowledge the root directly — correct
	// but Θ(n) time at the root's serialized NCU (the ablation).
	EchoDirect
)

// String names the mode.
func (m EchoMode) String() string {
	switch m {
	case EchoOptimal:
		return "optimal-tree"
	case EchoDirect:
		return "direct-to-root"
	default:
		return fmt.Sprintf("echo(%d)", int(m))
	}
}

// TreeEdge describes one spanning-tree edge with both directions' link IDs,
// letting any receiver compute tree routes locally.
type TreeEdge struct {
	Child  core.NodeID
	Parent core.NodeID
	Down   anr.ID // at Parent toward Child
	Up     anr.ID // at Child toward Parent
}

// RouteSpec is one branching path of the broadcast phase.
type RouteSpec struct {
	Start core.NodeID
	Links []anr.ID
}

// bcast is the broadcast message: the branching paths plus everything a
// receiver needs to take its place in the echo tree.
type bcast struct {
	Root   core.NodeID
	Routes []RouteSpec
	Edges  []TreeEdge
	Order  []core.NodeID // spanning-tree nodes in BFS order, root first
	Mode   EchoMode
	C, P   core.Time
}

// ack flows up the echo tree.
type ack struct {
	From core.NodeID
}

// proto is the per-node PIF protocol.
type proto struct {
	id   core.NodeID
	done *doneProbe

	received  bool
	pending   int
	early     int // acks that arrived before the broadcast did
	ackRoute  anr.Header
	isRoot    bool
	completed bool
}

// doneProbe records the root's completion time and the broadcast's reach.
type doneProbe struct {
	finished  core.Time
	lastBcast core.Time
	acks      int
}

var _ core.Protocol = (*proto)(nil)

func (p *proto) Init(core.Env) {}

func (p *proto) LinkEvent(core.Env, core.Port) {}

func (p *proto) Deliver(env core.Env, pkt core.Packet) {
	switch m := pkt.Payload.(type) {
	case *bcast:
		if p.received {
			return
		}
		p.received = true
		if now := env.Now(); now > p.done.lastBcast {
			p.done.lastBcast = now
		}
		p.relay(env, m)
		p.joinEcho(env, m)
	case *ack:
		p.done.acks++
		if !p.received {
			// The echo can overtake the broadcast on short routes; hold
			// the count until this node knows its own role.
			p.early++
			return
		}
		p.pending--
		if p.pending == 0 {
			p.finish(env)
		}
	}
}

// relay forwards the broadcast over the branching paths starting here.
func (p *proto) relay(env core.Env, m *bcast) {
	var hs []anr.Header
	for _, spec := range m.Routes {
		if spec.Start != p.id {
			continue
		}
		hs = append(hs, anr.CopyPath(spec.Links))
	}
	if len(hs) == 0 {
		return
	}
	if err := env.Multicast(hs, m); err != nil {
		panic(fmt.Sprintf("pif: relay: %v", err))
	}
}

// joinEcho computes this node's echo parent and children count from the
// shared description, then acknowledges if it is an echo leaf.
func (p *proto) joinEcho(env core.Env, m *bcast) {
	p.isRoot = p.id == m.Root
	parent, children, err := echoRole(m, p.id)
	if err != nil {
		panic(fmt.Sprintf("pif: echo role: %v", err))
	}
	p.pending = children - p.early
	p.early = 0
	if !p.isRoot {
		route, err := treeRoute(m.Edges, p.id, parent)
		if err != nil {
			panic(fmt.Sprintf("pif: echo route: %v", err))
		}
		p.ackRoute = route
	}
	if p.pending <= 0 {
		p.finish(env)
	}
}

// finish sends the aggregated acknowledgement (or completes at the root).
func (p *proto) finish(env core.Env) {
	if p.completed {
		return
	}
	p.completed = true
	if p.isRoot {
		p.done.finished = env.Now()
		return
	}
	if err := env.Send(p.ackRoute, &ack{From: p.id}); err != nil {
		panic(fmt.Sprintf("pif: ack: %v", err))
	}
}

// echoRole returns a node's parent and child count in the echo tree.
func echoRole(m *bcast, id core.NodeID) (core.NodeID, int, error) {
	idx := -1
	for i, u := range m.Order {
		if u == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return core.None, 0, fmt.Errorf("node %d not in the broadcast order", id)
	}
	n := len(m.Order)
	if m.Mode == EchoDirect {
		if idx == 0 {
			return core.None, n - 1, nil
		}
		return m.Order[0], 0, nil
	}
	tree, err := echoTree(n, m.C, m.P)
	if err != nil {
		return core.None, 0, err
	}
	if idx == 0 {
		return core.None, len(tree.Children[0]), nil
	}
	return m.Order[tree.Parent[idx]], len(tree.Children[idx]), nil
}

// echoTree builds the deterministic §5 optimal tree for n nodes under
// (C, P); every node computes the same one.
func echoTree(n int, c, p core.Time) (*globalfn.Tree, error) {
	params := globalfn.Params{C: globalfn.Time(c), P: globalfn.Time(p)}
	if params.P == 0 {
		params.P = 1 // the echo still serializes activations
	}
	tstar, err := params.OptimalTime(int64(n))
	if err != nil {
		return nil, err
	}
	full, err := params.OptimalTree(tstar)
	if err != nil {
		return nil, err
	}
	return full.PruneTo(n)
}

// treeRoute builds the ANR route from u to w along spanning-tree edges
// (up to the least common ancestor, then down).
func treeRoute(edges []TreeEdge, u, w core.NodeID) (anr.Header, error) {
	parent := make(map[core.NodeID]TreeEdge, len(edges))
	depth := make(map[core.NodeID]int, len(edges)+1)
	children := make(map[core.NodeID][]TreeEdge, len(edges))
	for _, e := range edges {
		parent[e.Child] = e
		children[e.Parent] = append(children[e.Parent], e)
	}
	var root core.NodeID = core.None
	for _, e := range edges {
		if _, ok := parent[e.Parent]; !ok {
			root = e.Parent
			break
		}
	}
	if root == core.None && len(edges) > 0 {
		return nil, fmt.Errorf("pif: rootless edge set")
	}
	// Depths via BFS from the root.
	depth[root] = 0
	queue := []core.NodeID{root}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, e := range children[x] {
			depth[e.Child] = depth[x] + 1
			queue = append(queue, e.Child)
		}
	}
	// Climb to the LCA.
	var upLinks []anr.ID
	var downRev []anr.ID
	a, b := u, w
	for depth[a] > depth[b] {
		e := parent[a]
		upLinks = append(upLinks, e.Up)
		a = e.Parent
	}
	for depth[b] > depth[a] {
		e := parent[b]
		downRev = append(downRev, e.Down)
		b = e.Parent
	}
	for a != b {
		ea, eb := parent[a], parent[b]
		upLinks = append(upLinks, ea.Up)
		downRev = append(downRev, eb.Down)
		a, b = ea.Parent, eb.Parent
	}
	links := upLinks
	for i := len(downRev) - 1; i >= 0; i-- {
		links = append(links, downRev[i])
	}
	return anr.Direct(links), nil
}

// Result reports one PIF run.
type Result struct {
	Mode EchoMode
	// Finish is when the root had every acknowledgement.
	Finish core.Time
	// BroadcastTime is when the last node received the broadcast.
	BroadcastTime core.Time
	Metrics       core.Metrics
}

// Run executes one PIF from root over g with the given delays.
func Run(g *graph.Graph, root core.NodeID, mode EchoMode, c, p core.Time) (Result, error) {
	if !g.Connected() {
		return Result{}, fmt.Errorf("pif: graph must be connected")
	}
	pm := core.NewPortMap(g)
	bfs := g.BFSTree(root)
	labels := paths.Labels(bfs)
	dec := paths.Decompose(bfs, labels)

	msg := &bcast{Root: root, Mode: mode, C: c, P: p}
	for _, path := range dec.Paths {
		spec := RouteSpec{Start: path.Start()}
		prev := path.Start()
		for _, v := range path.Chain() {
			lid, ok := pm.Toward(prev, v)
			if !ok {
				return Result{}, fmt.Errorf("pif: missing link %d-%d", prev, v)
			}
			spec.Links = append(spec.Links, lid)
			prev = v
		}
		msg.Routes = append(msg.Routes, spec)
	}
	for u := 0; u < g.N(); u++ {
		id := core.NodeID(u)
		if id == root {
			continue
		}
		par := bfs.Parent[id]
		down, _ := pm.Toward(par, id)
		up, _ := pm.Toward(id, par)
		msg.Edges = append(msg.Edges, TreeEdge{Child: id, Parent: par, Down: down, Up: up})
	}
	// BFS order, root first.
	msg.Order = bfsOrder(bfs, root)

	done := &doneProbe{finished: -1}
	net := sim.New(g, func(id core.NodeID) core.Protocol {
		return &proto{id: id, done: done}
	}, sim.WithDelays(c, p), sim.WithDmax(2*g.N()+2))
	net.Inject(0, root, msg)
	if _, err := net.Run(); err != nil {
		return Result{}, err
	}
	if done.finished < 0 {
		return Result{}, fmt.Errorf("pif: root never completed (%d acks)", done.acks)
	}
	return Result{
		Mode:          mode,
		Finish:        done.finished,
		BroadcastTime: done.lastBcast,
		Metrics:       net.Metrics(),
	}, nil
}

// bfsOrder lists tree nodes in breadth-first order starting at root.
func bfsOrder(t *graph.Tree, root core.NodeID) []core.NodeID {
	children := t.Children()
	for u := range children {
		sort.Slice(children[u], func(i, j int) bool { return children[u][i] < children[u][j] })
	}
	order := []core.NodeID{root}
	for i := 0; i < len(order); i++ {
		order = append(order, children[order[i]]...)
	}
	return order
}
