// Package pif implements propagation of information with feedback (PIF,
// broadcast-with-echo) under the paper's model — an answer to the
// conclusion's question "can other distributed algorithms be similarly
// improved?".
//
// The broadcast phase is §3's branching-paths scheme (n-1 system calls,
// O(log n) time). The echo phase is where the new model bites: letting
// every node acknowledge the root directly serializes n-1 activations at
// the root's NCU — O(n) time. Instead, the acknowledgements flow up a §5
// optimal aggregation tree (binomial in the C=0, P=1 regime) computed
// identically by every node from the broadcast's tree description: n-1
// more system calls, O(log n) more time. Both phases together: O(n) system
// calls and O(log n) time, where the pre-switching way costs O(m) and O(n).
package pif

import (
	"fmt"
	"sort"

	"fastnet/internal/anr"
	"fastnet/internal/core"
	"fastnet/internal/globalfn"
	"fastnet/internal/graph"
	"fastnet/internal/paths"
	"fastnet/internal/sim"
)

// EchoMode selects the feedback discipline.
type EchoMode int

// Echo disciplines.
const (
	// EchoOptimal aggregates acknowledgements over the §5 optimal tree.
	EchoOptimal EchoMode = iota + 1
	// EchoDirect lets every node acknowledge the root directly — correct
	// but Θ(n) time at the root's serialized NCU (the ablation).
	EchoDirect
)

// String names the mode.
func (m EchoMode) String() string {
	switch m {
	case EchoOptimal:
		return "optimal-tree"
	case EchoDirect:
		return "direct-to-root"
	default:
		return fmt.Sprintf("echo(%d)", int(m))
	}
}

// TreeEdge describes one spanning-tree edge with both directions' link IDs,
// letting any receiver compute tree routes locally.
type TreeEdge struct {
	Child  core.NodeID
	Parent core.NodeID
	Down   anr.ID // at Parent toward Child
	Up     anr.ID // at Child toward Parent
}

// RouteSpec is one branching path of the broadcast phase.
type RouteSpec struct {
	Start core.NodeID
	Links []anr.ID
}

// bcast is the broadcast message: the branching paths plus everything a
// receiver needs to take its place in the echo tree.
type bcast struct {
	Root   core.NodeID
	Routes []RouteSpec
	Edges  []TreeEdge
	Order  []core.NodeID // spanning-tree nodes in BFS order, root first
	Mode   EchoMode
	C, P   core.Time

	// Shared precomputed echo structure. Every field below is a pure
	// function of the fields above, so every receiver would compute the
	// identical values — and local computation is free in the model's cost
	// measures (only hops, activations and delay are priced). Computing
	// them once at the origin instead of once per node keeps the simulated
	// execution identical while cutting the simulator's own cost from
	// O(n^2) map-and-tree builds to O(n).
	Pos      []int32        // Pos[u] = index of u in Order, -1 if absent
	ParentAt []int32        // edgeIndex(Edges)
	Tree     *globalfn.Tree // the §5 echo tree (EchoOptimal only)
}

// ack flows up the echo tree.
type ack struct {
	From core.NodeID
}

// proto is the per-node PIF protocol.
type proto struct {
	id   core.NodeID
	done *doneProbe

	received  bool
	pending   int
	early     int // acks that arrived before the broadcast did
	ackRoute  anr.Header
	isRoot    bool
	completed bool
}

// doneProbe records the root's completion time and the broadcast's reach.
type doneProbe struct {
	finished  core.Time
	lastBcast core.Time
	acks      int
}

var _ core.Protocol = (*proto)(nil)

func (p *proto) Init(core.Env) {}

func (p *proto) LinkEvent(core.Env, core.Port) {}

func (p *proto) Deliver(env core.Env, pkt core.Packet) {
	switch m := pkt.Payload.(type) {
	case *bcast:
		if p.received {
			return
		}
		p.received = true
		if now := env.Now(); now > p.done.lastBcast {
			p.done.lastBcast = now
		}
		p.relay(env, m)
		p.joinEcho(env, m)
	case *ack:
		p.done.acks++
		if !p.received {
			// The echo can overtake the broadcast on short routes; hold
			// the count until this node knows its own role.
			p.early++
			return
		}
		p.pending--
		if p.pending == 0 {
			p.finish(env)
		}
	}
}

// relay forwards the broadcast over the branching paths starting here.
// Routes is sorted by Start (Run's contract), so this node's paths are a
// contiguous run found by binary search rather than a scan of all paths.
func (p *proto) relay(env core.Env, m *bcast) {
	lo := sort.Search(len(m.Routes), func(j int) bool { return m.Routes[j].Start >= p.id })
	var hs []anr.Header
	for _, spec := range m.Routes[lo:] {
		if spec.Start != p.id {
			break
		}
		hs = append(hs, anr.CopyPath(spec.Links))
	}
	if len(hs) == 0 {
		return
	}
	if err := env.Multicast(hs, m); err != nil {
		panic(fmt.Sprintf("pif: relay: %v", err))
	}
}

// joinEcho computes this node's echo parent and children count from the
// shared description, then acknowledges if it is an echo leaf.
func (p *proto) joinEcho(env core.Env, m *bcast) {
	p.isRoot = p.id == m.Root
	parent, children, err := echoRole(m, p.id)
	if err != nil {
		panic(fmt.Sprintf("pif: echo role: %v", err))
	}
	p.pending = children - p.early
	p.early = 0
	if !p.isRoot {
		idx := m.ParentAt
		if idx == nil {
			idx = edgeIndex(m.Edges)
		}
		route, err := treeRouteIdx(m.Edges, idx, p.id, parent)
		if err != nil {
			panic(fmt.Sprintf("pif: echo route: %v", err))
		}
		p.ackRoute = route
	}
	if p.pending <= 0 {
		p.finish(env)
	}
}

// finish sends the aggregated acknowledgement (or completes at the root).
func (p *proto) finish(env core.Env) {
	if p.completed {
		return
	}
	p.completed = true
	if p.isRoot {
		p.done.finished = env.Now()
		return
	}
	if err := env.Send(p.ackRoute, &ack{From: p.id}); err != nil {
		panic(fmt.Sprintf("pif: ack: %v", err))
	}
}

// echoRole returns a node's parent and child count in the echo tree.
func echoRole(m *bcast, id core.NodeID) (core.NodeID, int, error) {
	idx := -1
	if m.Pos != nil {
		if int(id) < len(m.Pos) {
			idx = int(m.Pos[id])
		}
	} else {
		for i, u := range m.Order {
			if u == id {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		return core.None, 0, fmt.Errorf("node %d not in the broadcast order", id)
	}
	n := len(m.Order)
	if m.Mode == EchoDirect {
		if idx == 0 {
			return core.None, n - 1, nil
		}
		return m.Order[0], 0, nil
	}
	tree := m.Tree
	if tree == nil {
		var err error
		if tree, err = echoTree(n, m.C, m.P); err != nil {
			return core.None, 0, err
		}
	}
	if idx == 0 {
		return core.None, len(tree.Children[0]), nil
	}
	return m.Order[tree.Parent[idx]], len(tree.Children[idx]), nil
}

// echoTree builds the deterministic §5 optimal tree for n nodes under
// (C, P); every node computes the same one.
func echoTree(n int, c, p core.Time) (*globalfn.Tree, error) {
	params := globalfn.Params{C: globalfn.Time(c), P: globalfn.Time(p)}
	if params.P == 0 {
		params.P = 1 // the echo still serializes activations
	}
	tstar, err := params.OptimalTime(int64(n))
	if err != nil {
		return nil, err
	}
	full, err := params.OptimalTree(tstar)
	if err != nil {
		return nil, err
	}
	return full.PruneTo(n)
}

// treeRoute builds the ANR route from u to w along spanning-tree edges
// (up to the least common ancestor, then down).
func treeRoute(edges []TreeEdge, u, w core.NodeID) (anr.Header, error) {
	return treeRouteIdx(edges, edgeIndex(edges), u, w)
}

// edgeIndex returns the child-to-edge index treeRouteIdx climbs on:
// idx[u] = position in edges of the edge whose Child is u, -1 for the root
// and for nodes outside the edge set.
func edgeIndex(edges []TreeEdge) []int32 {
	max := core.NodeID(-1)
	for _, e := range edges {
		if e.Child > max {
			max = e.Child
		}
		if e.Parent > max {
			max = e.Parent
		}
	}
	idx := make([]int32, int(max)+1)
	for i := range idx {
		idx[i] = -1
	}
	for i, e := range edges {
		idx[e.Child] = int32(i)
	}
	return idx
}

// treeRouteIdx is treeRoute on a prebuilt edgeIndex: two parent-chain climbs
// to equal depth, then a joint climb to the least common ancestor — O(path)
// with no maps, no BFS, and no allocation beyond the route itself.
func treeRouteIdx(edges []TreeEdge, parentAt []int32, u, w core.NodeID) (anr.Header, error) {
	at := func(x core.NodeID) int32 {
		if int(x) < len(parentAt) {
			return parentAt[x]
		}
		return -1
	}
	depth := func(x core.NodeID) (int, error) {
		d := 0
		for at(x) >= 0 {
			if d > len(edges) {
				return 0, fmt.Errorf("pif: cyclic edge set")
			}
			x = edges[at(x)].Parent
			d++
		}
		return d, nil
	}
	a, b := u, w
	da, err := depth(a)
	if err != nil {
		return nil, err
	}
	db, err := depth(b)
	if err != nil {
		return nil, err
	}
	var upLinks []anr.ID
	var downRev []anr.ID
	for da > db {
		e := edges[at(a)]
		upLinks = append(upLinks, e.Up)
		a, da = e.Parent, da-1
	}
	for db > da {
		e := edges[at(b)]
		downRev = append(downRev, e.Down)
		b, db = e.Parent, db-1
	}
	for a != b {
		ia, ib := at(a), at(b)
		if ia < 0 || ib < 0 {
			return nil, fmt.Errorf("pif: no tree path %d->%d", u, w)
		}
		ea, eb := edges[ia], edges[ib]
		upLinks = append(upLinks, ea.Up)
		downRev = append(downRev, eb.Down)
		a, b = ea.Parent, eb.Parent
	}
	links := upLinks
	for i := len(downRev) - 1; i >= 0; i-- {
		links = append(links, downRev[i])
	}
	return anr.Direct(links), nil
}

// Result reports one PIF run.
type Result struct {
	Mode EchoMode
	// Finish is when the root had every acknowledgement.
	Finish core.Time
	// BroadcastTime is when the last node received the broadcast.
	BroadcastTime core.Time
	Metrics       core.Metrics
}

// Run executes one PIF from root over g with the given delays.
func Run(g *graph.Graph, root core.NodeID, mode EchoMode, c, p core.Time) (Result, error) {
	if !g.Connected() {
		return Result{}, fmt.Errorf("pif: graph must be connected")
	}
	pm := core.NewPortMap(g)
	bfs := g.BFSTree(root)
	labels := paths.Labels(bfs)
	dec := paths.Decompose(bfs, labels)

	msg := &bcast{Root: root, Mode: mode, C: c, P: p}
	for _, path := range dec.Paths {
		spec := RouteSpec{Start: path.Start()}
		prev := path.Start()
		for _, v := range path.Chain() {
			lid, ok := pm.Toward(prev, v)
			if !ok {
				return Result{}, fmt.Errorf("pif: missing link %d-%d", prev, v)
			}
			spec.Links = append(spec.Links, lid)
			prev = v
		}
		msg.Routes = append(msg.Routes, spec)
	}
	// Sorted by Start (stably, keeping each start's decomposition order) so
	// relay can binary-search its own paths.
	sort.SliceStable(msg.Routes, func(i, j int) bool { return msg.Routes[i].Start < msg.Routes[j].Start })
	for u := 0; u < g.N(); u++ {
		id := core.NodeID(u)
		if id == root {
			continue
		}
		par := bfs.Parent[id]
		down, _ := pm.Toward(par, id)
		up, _ := pm.Toward(id, par)
		msg.Edges = append(msg.Edges, TreeEdge{Child: id, Parent: par, Down: down, Up: up})
	}
	// BFS order, root first.
	msg.Order = bfsOrder(bfs, root)
	msg.Pos = make([]int32, g.N())
	for i := range msg.Pos {
		msg.Pos[i] = -1
	}
	for i, u := range msg.Order {
		msg.Pos[u] = int32(i)
	}
	msg.ParentAt = edgeIndex(msg.Edges)
	if mode == EchoOptimal {
		tree, err := echoTree(len(msg.Order), c, p)
		if err != nil {
			return Result{}, err
		}
		msg.Tree = tree
	}

	done := &doneProbe{finished: -1}
	net := sim.New(g, func(id core.NodeID) core.Protocol {
		return &proto{id: id, done: done}
	}, sim.WithDelays(c, p), sim.WithDmax(2*g.N()+2))
	net.Inject(0, root, msg)
	if _, err := net.Run(); err != nil {
		return Result{}, err
	}
	if done.finished < 0 {
		return Result{}, fmt.Errorf("pif: root never completed (%d acks)", done.acks)
	}
	return Result{
		Mode:          mode,
		Finish:        done.finished,
		BroadcastTime: done.lastBcast,
		Metrics:       net.Metrics(),
	}, nil
}

// bfsOrder lists tree nodes in breadth-first order starting at root.
func bfsOrder(t *graph.Tree, root core.NodeID) []core.NodeID {
	children := t.Children()
	for u := range children {
		sort.Slice(children[u], func(i, j int) bool { return children[u][i] < children[u][j] })
	}
	order := []core.NodeID{root}
	for i := 0; i < len(order); i++ {
		order = append(order, children[order[i]]...)
	}
	return order
}
