package reliable_test

import (
	"testing"

	"fastnet/internal/core"
	"fastnet/internal/graph"
	"fastnet/internal/reliable"
	"fastnet/internal/topology"
)

// TestTopologyRouterFrom wires the topology database's cached routing plane
// into the reliable endpoint's Router shape: early attempts retransmit over
// the min-hop route, later attempts switch to the load-weighted alternate,
// and a topology change between attempts re-routes because the adapter
// re-reads the live database instead of capturing a header.
func TestTopologyRouterFrom(t *testing.T) {
	g := graph.Ring(4)
	pm := core.NewPortMap(g)
	db := topology.NewDB()
	recs := topology.RecordsForGraph(g, pm, nil)
	for _, r := range recs {
		db.Update(r)
	}
	// Load the 0-1 link so the min-load route 0->2 goes via 3 instead.
	for _, r := range recs {
		if r.Node == 0 {
			for i := range r.Links {
				if r.Links[i].Neighbor == 1 {
					r.Links[i].Load = 10
				}
			}
			r.Seq++
			db.Update(r)
		}
	}

	var router reliable.Router = db.RouterFrom(0)

	wantHop, err := db.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantLoad, err := db.RouteMinLoad(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wantHop[0] == wantLoad[0] {
		t.Fatalf("test graph did not separate the metrics: both routes start with %+v", wantHop[0])
	}

	for attempt := 0; attempt < 4; attempt++ {
		h, ok := router(2, attempt)
		if !ok {
			t.Fatalf("attempt %d: no route", attempt)
		}
		want := wantHop
		if attempt >= 2 {
			want = wantLoad
		}
		if len(h) != len(want) || h[0] != want[0] {
			t.Fatalf("attempt %d: route %v, want %v", attempt, h, want)
		}
	}

	if _, ok := router(17, 0); ok {
		t.Fatal("route to an unknown node must report no route")
	}

	// Fail link 0-1: every subsequent attempt must re-route via 3.
	down := map[graph.Edge]bool{graph.Edge{U: 0, V: 1}.Canon(): true}
	for _, r := range topology.RecordsForGraph(g, pm, down) {
		r.Seq = 5
		db.Update(r)
	}
	h, ok := router(2, 0)
	if !ok {
		t.Fatal("re-route after link failure failed")
	}
	if h[0] != wantLoad[0] {
		t.Fatalf("after 0-1 failure the route must leave via node 3's link: got %v", h)
	}
}

// TestTopologyRouterFromPenalized wires the RTT ledger's slowdown signal
// into the routing plane: a destination the ledger calls slow escalates to
// the load-weighted alternate on the FIRST retransmission, healthy
// destinations keep RouterFrom's exact schedule, and nil degrades to
// RouterFrom behavior byte for byte.
func TestTopologyRouterFromPenalized(t *testing.T) {
	g := graph.Ring(4)
	pm := core.NewPortMap(g)
	db := topology.NewDB()
	recs := topology.RecordsForGraph(g, pm, nil)
	for _, r := range recs {
		db.Update(r)
	}
	for _, r := range recs {
		if r.Node == 0 {
			for i := range r.Links {
				if r.Links[i].Neighbor == 1 {
					r.Links[i].Load = 10
				}
			}
			r.Seq++
			db.Update(r)
		}
	}
	wantHop, err := db.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantLoad, err := db.RouteMinLoad(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wantHop[0] == wantLoad[0] {
		t.Fatalf("test graph did not separate the metrics: both routes start with %+v", wantHop[0])
	}

	graySet := map[core.NodeID]bool{2: true}
	var router reliable.Router = db.RouterFromPenalized(0, func(dst core.NodeID) bool { return graySet[dst] })

	// Gray destination: attempt 0 still uses the primary (the first send has
	// no evidence yet in-band), every retransmission takes the alternate.
	if h, ok := router(2, 0); !ok || h[0] != wantHop[0] {
		t.Fatalf("gray attempt 0: route %v ok=%v, want primary %v", h, ok, wantHop)
	}
	for attempt := 1; attempt < 4; attempt++ {
		h, ok := router(2, attempt)
		if !ok || h[0] != wantLoad[0] {
			t.Fatalf("gray attempt %d: route %v ok=%v, want alternate %v", attempt, h, ok, wantLoad)
		}
	}

	// Healthy destination (ledger says fine): the base schedule, unchanged.
	graySet[2] = false
	for attempt := 0; attempt < 4; attempt++ {
		h, ok := router(2, attempt)
		if !ok {
			t.Fatalf("healthy attempt %d: no route", attempt)
		}
		want := wantHop
		if attempt >= 2 {
			want = wantLoad
		}
		if h[0] != want[0] {
			t.Fatalf("healthy attempt %d: route %v, want %v", attempt, h, want)
		}
	}

	// nil slow-func degrades to RouterFrom exactly.
	plain := db.RouterFrom(0)
	nilPen := db.RouterFromPenalized(0, nil)
	for attempt := 0; attempt < 4; attempt++ {
		a, aok := plain(2, attempt)
		b, bok := nilPen(2, attempt)
		if aok != bok || len(a) != len(b) || (len(a) > 0 && a[0] != b[0]) {
			t.Fatalf("attempt %d: nil-penalized diverged from RouterFrom: %v vs %v", attempt, a, b)
		}
	}
}
