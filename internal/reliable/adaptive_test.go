package reliable

import (
	"math/rand"
	"testing"

	"fastnet/internal/anr"
	"fastnet/internal/core"
)

// fakeEnv satisfies the slice of core.Env the endpoint touches (Send, Rand);
// everything else panics so a test that strays is loud about it.
type fakeEnv struct {
	core.Env
	rng   *rand.Rand
	sends int
}

func (f *fakeEnv) Send(anr.Header, any) error { return nil }
func (f *fakeEnv) Rand() *rand.Rand           { return f.rng }

func newFakeEnv(seed int64) *fakeEnv { return &fakeEnv{rng: rand.New(rand.NewSource(seed))} }

// ackFor builds the well-formed ack retiring seq at sender e.
func ackFor(e *Endpoint, dst core.NodeID, seq uint64) *Ack {
	return &Ack{Src: dst, Dst: e.id, Seq: seq, Sum: ackSum(dst, e.id, seq)}
}

func TestRTTStateJacobsonFixedPoint(t *testing.T) {
	var st rttState
	st.observe(8)
	// First sample: SRTT = sample, RTTVAR = sample/2 → RTO = 8 + 16 = 24.
	if st.srtt8 != 64 || st.rttvar4 != 16 {
		t.Fatalf("first sample: srtt8=%d rttvar4=%d", st.srtt8, st.rttvar4)
	}
	if got := st.rto(); got != 24 {
		t.Fatalf("first RTO = %d, want 24", got)
	}
	// A long run of identical samples decays the variance toward its
	// fixed-point residue (rttvar4 sticks at 3: 3>>2 == 0) and the RTO
	// toward SRTT plus that residue.
	for i := 0; i < 64; i++ {
		st.observe(8)
	}
	if got := st.srtt8 >> 3; got != 8 {
		t.Fatalf("steady SRTT = %d, want 8", got)
	}
	if got := st.rto(); got != 11 {
		t.Fatalf("steady RTO = %d, want 11 (SRTT + variance residue)", got)
	}
	// A sudden slowdown reopens the variance before SRTT catches up.
	before := st.rto()
	st.observe(40)
	if st.rto() <= before {
		t.Fatalf("RTO did not grow on a 5x RTT spike: %d -> %d", before, st.rto())
	}
}

// TestAdaptiveRTOTracksDestination drives a full sender-side cycle per ack
// and checks the first-attempt timeout converges to the observed RTT rather
// than the configured floor.
func TestAdaptiveRTOTracksDestination(t *testing.T) {
	env := newFakeEnv(1)
	e := NewEndpoint(0, Config{RTO: 1, MaxBackoff: 64, Adaptive: true, MaxRTO: 32})
	dst := core.NodeID(1)
	route := anr.Direct([]anr.ID{1})
	const rtt = 6
	for i := 0; i < 40; i++ {
		if err := e.SendRoute(env, dst, route, i); err != nil {
			t.Fatal(err)
		}
		seq := e.nextSeq[dst]
		for k := 0; k < rtt; k++ {
			e.Tick(env)
		}
		e.onAck(ackFor(e, dst, seq))
	}
	st, ok := e.RTT(dst)
	if !ok {
		t.Fatal("no RTT samples accepted")
	}
	if st.SRTT < 5 || st.SRTT > 7 {
		t.Fatalf("SRTT = %g, want ~6", st.SRTT)
	}
	if got := e.rtoFor(dst); got < rtt || got > rtt+4 {
		t.Fatalf("adaptive RTO = %d, want a little above the true RTT %d", got, rtt)
	}
	// Note: with RTO=1 and a 6-tick RTT, the FIXED config would retransmit
	// ~5 times per frame; the adaptive sender should no longer retransmit
	// once converged. The early probes (first ~2 frames, pre-convergence)
	// may retransmit — after that, silence.
	if e.stats.Retransmits > 30 {
		t.Fatalf("adaptive sender kept retransmitting after convergence: %d", e.stats.Retransmits)
	}
}

// TestKarnRuleExcludesRetransmitted: a frame that was retransmitted must not
// contribute an RTT sample, no matter how plausible its ack looks.
func TestKarnRuleExcludesRetransmitted(t *testing.T) {
	env := newFakeEnv(1)
	e := NewEndpoint(0, Config{RTO: 1, Adaptive: true})
	dst := core.NodeID(1)
	route := anr.Direct([]anr.ID{1})
	if err := e.SendRoute(env, dst, route, "x"); err != nil {
		t.Fatal(err)
	}
	seq := e.nextSeq[dst]
	// Tick far past the timeout so the frame retransmits at least once.
	for k := 0; k < 8; k++ {
		e.Tick(env)
	}
	if e.stats.Retransmits == 0 {
		t.Fatal("frame never retransmitted; the test premise is broken")
	}
	e.onAck(ackFor(e, dst, seq))
	if e.stats.Acked != 1 {
		t.Fatalf("ack not consumed: %+v", e.stats)
	}
	if _, ok := e.RTT(dst); ok {
		t.Fatal("Karn's rule violated: retransmitted frame produced an RTT sample")
	}
	// A clean (first-attempt) ack afterwards is sampled as usual.
	if err := e.SendRoute(env, dst, route, "y"); err != nil {
		t.Fatal(err)
	}
	e.onAck(ackFor(e, dst, e.nextSeq[dst]))
	if st, ok := e.RTT(dst); !ok || st.Samples != 1 {
		t.Fatalf("clean ack not sampled: %+v ok=%v", st, ok)
	}
}

// TestAdaptiveRTOClamps: the estimator's output is clamped to [MinRTO, MaxRTO].
func TestAdaptiveRTOClamps(t *testing.T) {
	env := newFakeEnv(1)
	e := NewEndpoint(0, Config{RTO: 1, Adaptive: true, MinRTO: 4, MaxRTO: 10})
	dst := core.NodeID(1)
	route := anr.Direct([]anr.ID{1})
	// Instant acks: raw estimate would be ~1 tick; MinRTO must floor it.
	for i := 0; i < 10; i++ {
		if err := e.SendRoute(env, dst, route, i); err != nil {
			t.Fatal(err)
		}
		e.onAck(ackFor(e, dst, e.nextSeq[dst]))
	}
	if got := e.rtoFor(dst); got != 4 {
		t.Fatalf("RTO = %d, want MinRTO clamp 4", got)
	}
	// A glacial destination: raw estimate far above MaxRTO must be capped.
	slow := core.NodeID(2)
	for i := 0; i < 10; i++ {
		if err := e.SendRoute(env, slow, route, i); err != nil {
			t.Fatal(err)
		}
		seq := e.nextSeq[slow]
		p := e.pend[slow][seq]
		p.nextAt = 1 << 40 // hold off retransmission; this test times the ack only
		for k := 0; k < 50; k++ {
			e.Tick(env)
		}
		e.onAck(ackFor(e, slow, seq))
	}
	if got := e.rtoFor(slow); got != 10 {
		t.Fatalf("RTO = %d, want MaxRTO clamp 10", got)
	}
}

// TestZeroValueConfigUnchanged: without Adaptive, rtoFor is the fixed RTO and
// acks leave no estimator state behind — the pre-gray behavior, exactly.
func TestZeroValueConfigUnchanged(t *testing.T) {
	env := newFakeEnv(1)
	e := NewEndpoint(0, Config{RTO: 3})
	dst := core.NodeID(1)
	route := anr.Direct([]anr.ID{1})
	for i := 0; i < 5; i++ {
		if err := e.SendRoute(env, dst, route, i); err != nil {
			t.Fatal(err)
		}
		e.Tick(env)
		e.onAck(ackFor(e, dst, e.nextSeq[dst]))
	}
	if got := e.rtoFor(dst); got != 3 {
		t.Fatalf("fixed RTO drifted: %d", got)
	}
	if len(e.rtt) != 0 {
		t.Fatalf("non-adaptive endpoint grew estimator state: %v", e.rtt)
	}
	if _, ok := e.RTT(dst); ok {
		t.Fatal("RTT reported samples on a non-adaptive endpoint")
	}
}

// TestRetransmitJitterScalesWithBackoff pins the herd fix: after the backoff
// has doubled a few times, the gap between successive retransmissions must
// spread across the grown interval, not cluster within RTO of its start.
func TestRetransmitJitterScalesWithBackoff(t *testing.T) {
	const (
		rto    = 2
		trials = 40
	)
	spread := make(map[int64]bool)
	for trial := 0; trial < trials; trial++ {
		env := newFakeEnv(int64(trial) + 1)
		e := NewEndpoint(0, Config{RTO: rto, MaxBackoff: 64})
		if err := e.SendRoute(env, 1, anr.Direct([]anr.ID{1}), "x"); err != nil {
			t.Fatal(err)
		}
		p := e.pend[1][1]
		// March to the third retransmission: backoff is 16 by then.
		for p.attempt < 4 {
			e.Tick(env)
		}
		if p.backoff != 32 {
			t.Fatalf("backoff after 3 retransmissions = %d, want 32", p.backoff)
		}
		// nextAt was scheduled from the 16-tick interval: the jitter term
		// must range over [0,16], not [0,RTO].
		slack := p.nextAt - e.ticks - 16
		if slack < 0 || slack > 16 {
			t.Fatalf("jitter slack %d outside the current interval [0,16]", slack)
		}
		spread[slack] = true
	}
	// With jitter ~Uniform[0,16] across 40 trials we must see draws beyond
	// the old fixed [0,RTO]=[0,2] range.
	beyond := 0
	for s := range spread {
		if s > rto {
			beyond++
		}
	}
	if beyond == 0 {
		t.Fatalf("all jitter draws within [0,%d]; still using the initial RTO: %v", rto, spread)
	}
}

// TestSlowFlagsGrayDestination: the per-route ledger calls a destination slow
// when its smoothed RTT is a factor above the endpoint's fastest peer.
func TestSlowFlagsGrayDestination(t *testing.T) {
	env := newFakeEnv(1)
	e := NewEndpoint(0, Config{RTO: 1, Adaptive: true, MaxRTO: 100})
	route := anr.Direct([]anr.ID{1})
	drive := func(dst core.NodeID, rtt int) {
		for i := 0; i < 8; i++ {
			if err := e.SendRoute(env, dst, route, i); err != nil {
				t.Fatal(err)
			}
			seq := e.nextSeq[dst]
			e.pend[dst][seq].nextAt = 1 << 40
			for k := 0; k < rtt; k++ {
				e.Tick(env)
			}
			e.onAck(ackFor(e, dst, seq))
		}
	}
	drive(1, 2) // healthy
	drive(2, 3) // a bit behind, within factor 2
	drive(3, 9) // gray: >4x the fastest
	if e.Slow(1, 2) || e.Slow(2, 2) {
		t.Fatalf("healthy destinations flagged slow: %v", e.RTTLedger())
	}
	if !e.Slow(3, 2) {
		t.Fatalf("gray destination not flagged: %v", e.RTTLedger())
	}
	if e.Slow(4, 2) {
		t.Fatal("sample-less destination flagged slow")
	}
	led := e.RTTLedger()
	if len(led) != 3 {
		t.Fatalf("ledger has %d entries, want 3: %v", len(led), led)
	}
	if led[3].SRTT <= led[1].SRTT {
		t.Fatalf("ledger ordering wrong: %v", led)
	}
}
