// Package reliable implements end-to-end reliable delivery of ANR-routed
// control messages on the fastnet model.
//
// The paper's §2 assumes the data-link layer makes every link either reliable
// or declared down. The lossy-link model (core.MsgFaults) withdraws that
// assumption: packets may be dropped, duplicated, corrupted or reordered in
// flight even on "up" links. This package restores exactly-once delivery in
// software, at measurable cost in the paper's own measures: every
// retransmission is extra hops (communication complexity) and every ack is an
// extra NCU activation (system-call complexity). Experiment E21 charts that
// overhead against the loss rate.
//
// Mechanics, all standard ARQ adapted to the model's constraints:
//
//   - Per-destination sequence numbers stamp every frame; the receiver keeps a
//     dedup window per source (contiguous floor + sparse set above it), so
//     fault-injected duplicates and retransmission races deliver at most once.
//   - Every frame carries an FNV-1a checksum over (src, dst, seq, payload
//     digest); corrupted frames fail verification and are dropped silently —
//     exactly what a damaged header CRC would do.
//   - Acks ride the hardware reverse route (pkt.Reverse, the paper's §2
//     reverse-path facility), so the receiver needs no routing knowledge.
//   - NCUs have no timers in this model: retransmission is driven by Tick
//     packets the driver injects (mirroring topology.Trigger). Each pending
//     frame backs off exponentially, with jitter drawn from Env.Rand() so
//     synchronized losses don't resynchronize retransmissions.
//   - A per-frame delivery deadline (in ticks) bounds the retry effort: when
//     it expires the frame is aborted and reported, modeling the "declare the
//     destination unreachable" escape hatch every end-to-end protocol needs.
package reliable

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"fastnet/internal/anr"
	"fastnet/internal/core"
)

// Frame is one reliably-tracked message in flight. Frames are immutable after
// send (receivers may see the same value repeatedly through duplicates).
type Frame struct {
	Src core.NodeID
	Dst core.NodeID
	Seq uint64
	// Sum is the FNV-1a checksum over (Src, Dst, Seq, payload digest);
	// receivers verify it before any state change.
	Sum     uint64
	Payload any
}

// CorruptedCopy implements core.Corruptible: link corruption damages the
// checksum and sequence fields the way real bit rot would, giving receiver
// verification something to reject instead of replacing the frame wholesale.
func (f *Frame) CorruptedCopy(r *rand.Rand) any {
	c := *f
	c.Sum ^= 1 + uint64(r.Int63())
	if r.Intn(2) == 0 {
		c.Seq ^= 1 << uint(r.Intn(16))
	}
	return &c
}

// Ack confirms receipt of one frame; it flows back over the hardware reverse
// route. Acks carry their own checksum: a corrupted ack must not confirm
// anything.
type Ack struct {
	Src core.NodeID // the frame's destination (ack sender)
	Dst core.NodeID // the frame's source (ack receiver)
	Seq uint64
	Sum uint64
}

// CorruptedCopy implements core.Corruptible.
func (a *Ack) CorruptedCopy(r *rand.Rand) any {
	c := *a
	c.Sum ^= 1 + uint64(r.Int63())
	return &c
}

// Tick drives retransmission: the driver injects it periodically (the model
// gives NCUs no timers; compare topology.Trigger). Each Tick is one unit of
// the endpoint's retransmission clock.
type Tick struct{}

// Router supplies the route for one delivery attempt. attempt is 0 for the
// original send and increments per retransmission, so implementations can
// switch to an alternate path when the primary keeps losing. Returning ok =
// false aborts the frame immediately (no route available).
type Router func(dst core.NodeID, attempt int) (anr.Header, bool)

// Stats counts the endpoint's software effort. All fields are cumulative.
type Stats struct {
	Sent        int64 // distinct payloads accepted for delivery
	Retransmits int64 // frames re-sent after a timeout
	Delivered   int64 // payloads handed to the application (exactly once each)
	Duplicates  int64 // frames discarded by the dedup window
	BadSum      int64 // frames or acks discarded by checksum verification
	Acked       int64 // pending frames confirmed
	DupAcks     int64 // acks for frames no longer pending
	Aborted     int64 // frames that hit their delivery deadline
	Garbled     int64 // unparseable frames (whole-payload corruption)
}

// pending tracks one unacked frame at the sender.
type pending struct {
	frame    *Frame
	route    anr.Header
	attempt  int   // delivery attempts made so far (1 after the first send)
	nextAt   int64 // tick count at which to retransmit
	backoff  int64 // current backoff interval in ticks
	deadline int64 // tick count at which to abort (0 = never)
}

// Config parameterizes an Endpoint. The zero value is usable: RTO 1 tick,
// unbounded backoff doubling capped at MaxBackoff, no deadline.
type Config struct {
	// RTO is the initial retransmission timeout in ticks (default 1).
	RTO int64
	// MaxBackoff caps the exponential backoff in ticks (default 16*RTO).
	MaxBackoff int64
	// Deadline aborts a frame this many ticks after first send; 0 disables.
	Deadline int64
	// OnDeliver receives each payload exactly once, in arrival order.
	OnDeliver func(env core.Env, src core.NodeID, payload any)
	// OnAbort is called when a frame hits its deadline.
	OnAbort func(env core.Env, f *Frame)
	// Route supplies per-attempt routes. Required for Send; SendRoute
	// bypasses it for attempt 0 and falls back to it for retransmissions
	// when non-nil.
	Route Router
}

// recvState is the per-source dedup window.
type recvState struct {
	// floor: all seqs <= floor have been delivered.
	floor uint64
	// above holds delivered seqs > floor (sparse, pruned as floor advances).
	above map[uint64]bool
}

// Endpoint is the per-node reliable-delivery state machine. It is not itself
// a core.Protocol — it is embedded in one (see Node) so hosts can multiplex
// it with other traffic. All methods must be called from protocol callbacks
// (activations are serialized per node), mirroring every other protocol in
// this repo.
type Endpoint struct {
	id  core.NodeID
	cfg Config

	nextSeq map[core.NodeID]uint64
	pend    map[core.NodeID]map[uint64]*pending
	recv    map[core.NodeID]*recvState
	ticks   int64
	stats   Stats
}

// NewEndpoint returns the endpoint for one node.
func NewEndpoint(id core.NodeID, cfg Config) *Endpoint {
	if cfg.RTO <= 0 {
		cfg.RTO = 1
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 16 * cfg.RTO
	}
	return &Endpoint{
		id:      id,
		cfg:     cfg,
		nextSeq: make(map[core.NodeID]uint64),
		pend:    make(map[core.NodeID]map[uint64]*pending),
		recv:    make(map[core.NodeID]*recvState),
	}
}

// Stats returns a snapshot of the endpoint's counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Pending returns the number of unacked frames.
func (e *Endpoint) Pending() int {
	n := 0
	for _, m := range e.pend {
		n += len(m)
	}
	return n
}

// checksum digests the frame identity and payload. Payload digesting goes
// through fmt: control payloads in this codebase are small value-ish structs
// whose %v rendering pins their content well enough for a fault model that
// flips bits via CorruptedCopy (typed corruption damages Sum/Seq directly, so
// verification never depends on digesting arbitrary depth).
func checksum(src, dst core.NodeID, seq uint64, payload any) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%v", src, dst, seq, payload)
	return h.Sum64()
}

func ackSum(src, dst core.NodeID, seq uint64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "ack|%d|%d|%d", src, dst, seq)
	return h.Sum64()
}

// Send queues payload for reliable delivery to dst, routing via cfg.Route.
func (e *Endpoint) Send(env core.Env, dst core.NodeID, payload any) error {
	if e.cfg.Route == nil {
		return fmt.Errorf("reliable: no Router configured")
	}
	route, ok := e.cfg.Route(dst, 0)
	if !ok {
		return fmt.Errorf("reliable: no route to node %d", dst)
	}
	return e.SendRoute(env, dst, route, payload)
}

// SendRoute queues payload for reliable delivery to dst over an explicit
// first-attempt route. Retransmissions re-route through cfg.Route when set
// (so attempt >= 1 can divert to an alternate path) and reuse route otherwise.
func (e *Endpoint) SendRoute(env core.Env, dst core.NodeID, route anr.Header, payload any) error {
	seq := e.nextSeq[dst] + 1
	e.nextSeq[dst] = seq
	f := &Frame{Src: e.id, Dst: dst, Seq: seq, Payload: payload}
	f.Sum = checksum(f.Src, f.Dst, f.Seq, f.Payload)
	p := &pending{frame: f, route: route, backoff: e.cfg.RTO}
	if e.cfg.Deadline > 0 {
		p.deadline = e.ticks + e.cfg.Deadline
	}
	if m := e.pend[dst]; m == nil {
		e.pend[dst] = map[uint64]*pending{seq: p}
	} else {
		m[seq] = p
	}
	e.stats.Sent++
	e.transmit(env, p)
	return nil
}

// transmit sends one attempt of p and schedules the next timeout with
// exponential backoff plus one tick of rng jitter.
func (e *Endpoint) transmit(env core.Env, p *pending) {
	p.attempt++
	// Send errors (route through a down first link, dmax) are treated like
	// loss: the timeout path retries, possibly over an alternate route.
	_ = env.Send(p.route, p.frame)
	jitter := int64(env.Rand().Intn(int(e.cfg.RTO) + 1))
	p.nextAt = e.ticks + p.backoff + jitter
	p.backoff = min(2*p.backoff, e.cfg.MaxBackoff)
}

// Tick advances the retransmission clock one unit: due frames retransmit,
// expired frames abort. Destinations and sequences are visited in sorted
// order so discrete-event runs replay exactly.
func (e *Endpoint) Tick(env core.Env) {
	e.ticks++
	dsts := make([]core.NodeID, 0, len(e.pend))
	for d := range e.pend {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, d := range dsts {
		m := e.pend[d]
		seqs := make([]uint64, 0, len(m))
		for s := range m {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, s := range seqs {
			p := m[s]
			if p.deadline > 0 && e.ticks >= p.deadline {
				delete(m, s)
				e.stats.Aborted++
				if e.cfg.OnAbort != nil {
					e.cfg.OnAbort(env, p.frame)
				}
				continue
			}
			if e.ticks < p.nextAt {
				continue
			}
			if e.cfg.Route != nil {
				if r, ok := e.cfg.Route(d, p.attempt); ok {
					p.route = r
				}
			}
			e.stats.Retransmits++
			e.transmit(env, p)
		}
		if len(m) == 0 {
			delete(e.pend, d)
		}
	}
}

// Deliver feeds the endpoint one received payload. It returns true if the
// payload was a reliable-layer message (frame or ack) and was consumed; false
// means the payload belongs to some other protocol sharing the node.
func (e *Endpoint) Deliver(env core.Env, pkt core.Packet) bool {
	switch msg := pkt.Payload.(type) {
	case *Frame:
		e.onFrame(env, pkt, msg)
		return true
	case *Ack:
		e.onAck(msg)
		return true
	case core.Garbled:
		// An unparseable frame: physically arrived, protocol-invisible.
		e.stats.Garbled++
		return true
	case Tick:
		e.Tick(env)
		return true
	default:
		return false
	}
}

// onFrame verifies, dedups, delivers, and always acks (re-acking duplicates
// is what heals a lost ack).
func (e *Endpoint) onFrame(env core.Env, pkt core.Packet, f *Frame) {
	if f.Dst != e.id || f.Sum != checksum(f.Src, f.Dst, f.Seq, f.Payload) {
		e.stats.BadSum++
		return
	}
	st := e.recv[f.Src]
	if st == nil {
		st = &recvState{above: make(map[uint64]bool)}
		e.recv[f.Src] = st
	}
	fresh := f.Seq > st.floor && !st.above[f.Seq]
	if fresh {
		st.above[f.Seq] = true
		for st.above[st.floor+1] {
			st.floor++
			delete(st.above, st.floor)
		}
		e.stats.Delivered++
		if e.cfg.OnDeliver != nil {
			e.cfg.OnDeliver(env, f.Src, f.Payload)
		}
	} else {
		e.stats.Duplicates++
	}
	// Ack over the hardware reverse route — even for duplicates: the dup may
	// mean our previous ack was lost.
	ack := &Ack{Src: e.id, Dst: f.Src, Seq: f.Seq, Sum: ackSum(e.id, f.Src, f.Seq)}
	_ = env.Send(pkt.Reverse, ack)
}

// onAck retires the pending frame the ack names.
func (e *Endpoint) onAck(a *Ack) {
	if a.Dst != e.id || a.Sum != ackSum(a.Src, a.Dst, a.Seq) {
		e.stats.BadSum++
		return
	}
	m := e.pend[a.Src]
	if m == nil || m[a.Seq] == nil {
		e.stats.DupAcks++
		return
	}
	delete(m, a.Seq)
	if len(m) == 0 {
		delete(e.pend, a.Src)
	}
	e.stats.Acked++
}

// Node wraps an Endpoint as a standalone core.Protocol for hosts that run
// only reliable traffic (tests, the soak ledger, experiment E21). Payloads
// the endpoint doesn't recognize are ignored.
type Node struct {
	E *Endpoint
}

// NewNode builds the protocol instance for one node.
func NewNode(id core.NodeID, cfg Config) *Node {
	return &Node{E: NewEndpoint(id, cfg)}
}

var _ core.Protocol = (*Node)(nil)

// Init implements core.Protocol.
func (n *Node) Init(core.Env) {}

// Deliver implements core.Protocol.
func (n *Node) Deliver(env core.Env, pkt core.Packet) {
	n.E.Deliver(env, pkt)
}

// LinkEvent implements core.Protocol. Link state is the Router's concern
// (routes are recomputed per attempt); the endpoint itself holds no
// topology.
func (n *Node) LinkEvent(core.Env, core.Port) {}
