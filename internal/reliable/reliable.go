// Package reliable implements end-to-end reliable delivery of ANR-routed
// control messages on the fastnet model.
//
// The paper's §2 assumes the data-link layer makes every link either reliable
// or declared down. The lossy-link model (core.MsgFaults) withdraws that
// assumption: packets may be dropped, duplicated, corrupted or reordered in
// flight even on "up" links. This package restores exactly-once delivery in
// software, at measurable cost in the paper's own measures: every
// retransmission is extra hops (communication complexity) and every ack is an
// extra NCU activation (system-call complexity). Experiment E21 charts that
// overhead against the loss rate.
//
// Mechanics, all standard ARQ adapted to the model's constraints:
//
//   - Per-destination sequence numbers stamp every frame; the receiver keeps a
//     dedup window per source (contiguous floor + sparse set above it), so
//     fault-injected duplicates and retransmission races deliver at most once.
//   - Every frame carries an FNV-1a checksum over (src, dst, seq, payload
//     digest); corrupted frames fail verification and are dropped silently —
//     exactly what a damaged header CRC would do.
//   - Acks ride the hardware reverse route (pkt.Reverse, the paper's §2
//     reverse-path facility), so the receiver needs no routing knowledge.
//   - NCUs have no timers in this model: retransmission is driven by Tick
//     packets the driver injects (mirroring topology.Trigger). Each pending
//     frame backs off exponentially, with jitter drawn from Env.Rand() so
//     synchronized losses don't resynchronize retransmissions.
//   - A per-frame delivery deadline (in ticks) bounds the retry effort: when
//     it expires the frame is aborted and reported, modeling the "declare the
//     destination unreachable" escape hatch every end-to-end protocol needs.
package reliable

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"fastnet/internal/anr"
	"fastnet/internal/core"
)

// Frame is one reliably-tracked message in flight. Frames are immutable after
// send (receivers may see the same value repeatedly through duplicates).
type Frame struct {
	Src core.NodeID
	Dst core.NodeID
	Seq uint64
	// Sum is the FNV-1a checksum over (Src, Dst, Seq, payload digest);
	// receivers verify it before any state change.
	Sum     uint64
	Payload any
}

// CorruptedCopy implements core.Corruptible: link corruption damages the
// checksum and sequence fields the way real bit rot would, giving receiver
// verification something to reject instead of replacing the frame wholesale.
func (f *Frame) CorruptedCopy(r *rand.Rand) any {
	c := *f
	c.Sum ^= 1 + uint64(r.Int63())
	if r.Intn(2) == 0 {
		c.Seq ^= 1 << uint(r.Intn(16))
	}
	return &c
}

// Ack confirms receipt of one frame; it flows back over the hardware reverse
// route. Acks carry their own checksum: a corrupted ack must not confirm
// anything.
type Ack struct {
	Src core.NodeID // the frame's destination (ack sender)
	Dst core.NodeID // the frame's source (ack receiver)
	Seq uint64
	Sum uint64
}

// CorruptedCopy implements core.Corruptible.
func (a *Ack) CorruptedCopy(r *rand.Rand) any {
	c := *a
	c.Sum ^= 1 + uint64(r.Int63())
	return &c
}

// Tick drives retransmission: the driver injects it periodically (the model
// gives NCUs no timers; compare topology.Trigger). Each Tick is one unit of
// the endpoint's retransmission clock.
type Tick struct{}

// Router supplies the route for one delivery attempt. attempt is 0 for the
// original send and increments per retransmission, so implementations can
// switch to an alternate path when the primary keeps losing. Returning ok =
// false aborts the frame immediately (no route available).
type Router func(dst core.NodeID, attempt int) (anr.Header, bool)

// Stats counts the endpoint's software effort. All fields are cumulative.
type Stats struct {
	Sent        int64 // distinct payloads accepted for delivery
	Retransmits int64 // frames re-sent after a timeout
	Delivered   int64 // payloads handed to the application (exactly once each)
	Duplicates  int64 // frames discarded by the dedup window
	BadSum      int64 // frames or acks discarded by checksum verification
	Acked       int64 // pending frames confirmed
	DupAcks     int64 // acks for frames no longer pending
	Aborted     int64 // frames that hit their delivery deadline
	Garbled     int64 // unparseable frames (whole-payload corruption)
}

// pending tracks one unacked frame at the sender.
type pending struct {
	frame    *Frame
	route    anr.Header
	attempt  int   // delivery attempts made so far (1 after the first send)
	nextAt   int64 // tick count at which to retransmit
	backoff  int64 // current backoff interval in ticks
	deadline int64 // tick count at which to abort (0 = never)
	sentAt   int64 // tick count of the most recent transmit (RTT sampling)
}

// Config parameterizes an Endpoint. The zero value is usable: RTO 1 tick,
// unbounded backoff doubling capped at MaxBackoff, no deadline.
type Config struct {
	// RTO is the initial retransmission timeout in ticks (default 1).
	RTO int64
	// MaxBackoff caps the exponential backoff in ticks (default 16*RTO).
	MaxBackoff int64
	// Deadline aborts a frame this many ticks after first send; 0 disables.
	Deadline int64
	// Adaptive enables Jacobson/Karn RTT estimation: the first-attempt RTO
	// of each destination tracks its smoothed ack round trip plus four mean
	// deviations (measured in ticks), so a destination behind a gray link
	// stops triggering spurious retransmissions. Frames that were ever
	// retransmitted are excluded from sampling (Karn's rule: their acks are
	// ambiguous), and until a clean sample exists the backed-off timeout is
	// retained for new frames to the same destination (Karn's algorithm in
	// full — otherwise a true RTT above RTO could never be learned). The
	// zero value keeps today's fixed-RTO behavior exactly.
	Adaptive bool
	// MinRTO clamps the adaptive RTO from below (default RTO). Ignored when
	// Adaptive is false.
	MinRTO int64
	// MaxRTO clamps the adaptive RTO from above (default MaxBackoff).
	// Ignored when Adaptive is false.
	MaxRTO int64
	// OnDeliver receives each payload exactly once, in arrival order.
	OnDeliver func(env core.Env, src core.NodeID, payload any)
	// OnAbort is called when a frame hits its deadline.
	OnAbort func(env core.Env, f *Frame)
	// Route supplies per-attempt routes. Required for Send; SendRoute
	// bypasses it for attempt 0 and falls back to it for retransmissions
	// when non-nil.
	Route Router
}

// rttState is one destination's Jacobson/Karn estimator in the classic
// fixed-point form (Van Jacobson's appendix / RFC 6298): srtt8 holds 8×SRTT
// and rttvar4 holds 4×RTTVAR, so the 1/8 and 1/4 smoothing gains survive the
// coarse integer tick clock.
type rttState struct {
	srtt8   int64
	rttvar4 int64
	samples int64
	// carry implements the second half of Karn's algorithm: until the first
	// unambiguous sample exists, a destination that forced retransmissions
	// keeps its backed-off timeout for new frames too. Without it a true
	// RTT above the configured RTO would retransmit every frame forever,
	// Karn's rule would exclude every ack, and the estimator could never
	// learn its way out.
	carry int64
}

func (st *rttState) observe(sample int64) {
	if st.samples == 0 {
		st.srtt8 = sample << 3
		st.rttvar4 = sample << 1
	} else {
		err := sample - st.srtt8>>3
		st.srtt8 += err
		if err < 0 {
			err = -err
		}
		st.rttvar4 += err - st.rttvar4>>2
	}
	st.samples++
}

// rto is SRTT + 4×RTTVAR, with the variance term floored at one tick so a
// perfectly steady destination still tolerates one tick of scheduling noise.
func (st *rttState) rto() int64 {
	return st.srtt8>>3 + max(1, st.rttvar4)
}

// RTTStats is the exported snapshot of one destination's estimator; the
// per-route RTT ledger (RTTLedger / Slow) is what gray-failure-aware routing
// consumes.
type RTTStats struct {
	SRTT    float64 // smoothed round trip, ticks
	RTTVar  float64 // smoothed mean deviation, ticks
	RTO     int64   // current first-attempt timeout, ticks (clamped)
	Samples int64   // accepted samples (Karn-excluded acks don't count)
}

// recvState is the per-source dedup window.
type recvState struct {
	// floor: all seqs <= floor have been delivered.
	floor uint64
	// above holds delivered seqs > floor (sparse, pruned as floor advances).
	above map[uint64]bool
}

// Endpoint is the per-node reliable-delivery state machine. It is not itself
// a core.Protocol — it is embedded in one (see Node) so hosts can multiplex
// it with other traffic. All methods must be called from protocol callbacks
// (activations are serialized per node), mirroring every other protocol in
// this repo.
type Endpoint struct {
	id  core.NodeID
	cfg Config

	nextSeq map[core.NodeID]uint64
	pend    map[core.NodeID]map[uint64]*pending
	recv    map[core.NodeID]*recvState
	rtt     map[core.NodeID]*rttState
	ticks   int64
	stats   Stats
}

// NewEndpoint returns the endpoint for one node.
func NewEndpoint(id core.NodeID, cfg Config) *Endpoint {
	if cfg.RTO <= 0 {
		cfg.RTO = 1
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 16 * cfg.RTO
	}
	if cfg.Adaptive {
		if cfg.MinRTO <= 0 {
			cfg.MinRTO = cfg.RTO
		}
		if cfg.MaxRTO <= 0 {
			cfg.MaxRTO = cfg.MaxBackoff
		}
	}
	return &Endpoint{
		id:      id,
		cfg:     cfg,
		nextSeq: make(map[core.NodeID]uint64),
		pend:    make(map[core.NodeID]map[uint64]*pending),
		recv:    make(map[core.NodeID]*recvState),
		rtt:     make(map[core.NodeID]*rttState),
	}
}

// rtoFor returns the first-attempt timeout for dst: the fixed RTO until the
// adaptive estimator has a sample, the clamped Jacobson/Karn value after.
func (e *Endpoint) rtoFor(dst core.NodeID) int64 {
	if !e.cfg.Adaptive {
		return e.cfg.RTO
	}
	st := e.rtt[dst]
	if st == nil || st.samples == 0 {
		if st != nil && st.carry > 0 {
			return min(st.carry, e.cfg.MaxRTO)
		}
		return e.cfg.RTO
	}
	return min(max(st.rto(), e.cfg.MinRTO), e.cfg.MaxRTO)
}

// RTT returns dst's estimator snapshot; ok is false before the first sample.
func (e *Endpoint) RTT(dst core.NodeID) (RTTStats, bool) {
	st := e.rtt[dst]
	if st == nil || st.samples == 0 {
		return RTTStats{}, false
	}
	return RTTStats{
		SRTT:    float64(st.srtt8) / 8,
		RTTVar:  float64(st.rttvar4) / 4,
		RTO:     e.rtoFor(dst),
		Samples: st.samples,
	}, true
}

// RTTLedger snapshots every destination with at least one accepted sample.
func (e *Endpoint) RTTLedger() map[core.NodeID]RTTStats {
	out := make(map[core.NodeID]RTTStats, len(e.rtt))
	for d := range e.rtt {
		if st, ok := e.RTT(d); ok {
			out[d] = st
		}
	}
	return out
}

// Slow reports whether dst's smoothed RTT exceeds factor× the fastest
// destination this endpoint talks to (factor <= 1 defaults to 2) — the
// observed-slowdown signal topology.DB.RouterFromPenalized consumes to
// escalate off a gray primary route early. Destinations without samples are
// never slow.
func (e *Endpoint) Slow(dst core.NodeID, factor float64) bool {
	if factor <= 1 {
		factor = 2
	}
	st := e.rtt[dst]
	if st == nil || st.samples == 0 {
		return false
	}
	best := int64(-1)
	for _, o := range e.rtt {
		if o.samples > 0 && (best < 0 || o.srtt8 < best) {
			best = o.srtt8
		}
	}
	return float64(st.srtt8) > factor*float64(best)
}

// Stats returns a snapshot of the endpoint's counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Pending returns the number of unacked frames.
func (e *Endpoint) Pending() int {
	n := 0
	for _, m := range e.pend {
		n += len(m)
	}
	return n
}

// checksum digests the frame identity and payload. Payload digesting goes
// through fmt: control payloads in this codebase are small value-ish structs
// whose %v rendering pins their content well enough for a fault model that
// flips bits via CorruptedCopy (typed corruption damages Sum/Seq directly, so
// verification never depends on digesting arbitrary depth).
func checksum(src, dst core.NodeID, seq uint64, payload any) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%v", src, dst, seq, payload)
	return h.Sum64()
}

func ackSum(src, dst core.NodeID, seq uint64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "ack|%d|%d|%d", src, dst, seq)
	return h.Sum64()
}

// Send queues payload for reliable delivery to dst, routing via cfg.Route.
func (e *Endpoint) Send(env core.Env, dst core.NodeID, payload any) error {
	if e.cfg.Route == nil {
		return fmt.Errorf("reliable: no Router configured")
	}
	route, ok := e.cfg.Route(dst, 0)
	if !ok {
		return fmt.Errorf("reliable: no route to node %d", dst)
	}
	return e.SendRoute(env, dst, route, payload)
}

// SendRoute queues payload for reliable delivery to dst over an explicit
// first-attempt route. Retransmissions re-route through cfg.Route when set
// (so attempt >= 1 can divert to an alternate path) and reuse route otherwise.
func (e *Endpoint) SendRoute(env core.Env, dst core.NodeID, route anr.Header, payload any) error {
	seq := e.nextSeq[dst] + 1
	e.nextSeq[dst] = seq
	f := &Frame{Src: e.id, Dst: dst, Seq: seq, Payload: payload}
	f.Sum = checksum(f.Src, f.Dst, f.Seq, f.Payload)
	p := &pending{frame: f, route: route, backoff: e.rtoFor(dst)}
	if e.cfg.Deadline > 0 {
		p.deadline = e.ticks + e.cfg.Deadline
	}
	if m := e.pend[dst]; m == nil {
		e.pend[dst] = map[uint64]*pending{seq: p}
	} else {
		m[seq] = p
	}
	e.stats.Sent++
	e.transmit(env, p)
	return nil
}

// transmit sends one attempt of p and schedules the next timeout with
// exponential backoff plus rng jitter proportional to the current interval.
func (e *Endpoint) transmit(env core.Env, p *pending) {
	p.attempt++
	p.sentAt = e.ticks
	// Send errors (route through a down first link, dmax) are treated like
	// loss: the timeout path retries, possibly over an alternate route.
	_ = env.Send(p.route, p.frame)
	// Jitter scales with the interval actually being waited: a fixed
	// [0, RTO] draw becomes negligible once backoff has grown, so endpoints
	// that backed off together would retransmit in synchronized herds.
	jitter := int64(env.Rand().Intn(int(p.backoff) + 1))
	p.nextAt = e.ticks + p.backoff + jitter
	p.backoff = min(2*p.backoff, e.cfg.MaxBackoff)
}

// Tick advances the retransmission clock one unit: due frames retransmit,
// expired frames abort. Destinations and sequences are visited in sorted
// order so discrete-event runs replay exactly.
func (e *Endpoint) Tick(env core.Env) {
	e.ticks++
	dsts := make([]core.NodeID, 0, len(e.pend))
	for d := range e.pend {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, d := range dsts {
		m := e.pend[d]
		seqs := make([]uint64, 0, len(m))
		for s := range m {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, s := range seqs {
			p := m[s]
			if p.deadline > 0 && e.ticks >= p.deadline {
				delete(m, s)
				e.stats.Aborted++
				if e.cfg.OnAbort != nil {
					e.cfg.OnAbort(env, p.frame)
				}
				continue
			}
			if e.ticks < p.nextAt {
				continue
			}
			if e.cfg.Route != nil {
				if r, ok := e.cfg.Route(d, p.attempt); ok {
					p.route = r
				}
			}
			e.stats.Retransmits++
			e.transmit(env, p)
			if e.cfg.Adaptive {
				st := e.rtt[d]
				if st == nil {
					st = &rttState{}
					e.rtt[d] = st
				}
				if st.samples == 0 && p.backoff > st.carry {
					st.carry = p.backoff
				}
			}
		}
		if len(m) == 0 {
			delete(e.pend, d)
		}
	}
}

// Deliver feeds the endpoint one received payload. It returns true if the
// payload was a reliable-layer message (frame or ack) and was consumed; false
// means the payload belongs to some other protocol sharing the node.
func (e *Endpoint) Deliver(env core.Env, pkt core.Packet) bool {
	switch msg := pkt.Payload.(type) {
	case *Frame:
		e.onFrame(env, pkt, msg)
		return true
	case *Ack:
		e.onAck(msg)
		return true
	case core.Garbled:
		// An unparseable frame: physically arrived, protocol-invisible.
		e.stats.Garbled++
		return true
	case Tick:
		e.Tick(env)
		return true
	default:
		return false
	}
}

// onFrame verifies, dedups, delivers, and always acks (re-acking duplicates
// is what heals a lost ack).
func (e *Endpoint) onFrame(env core.Env, pkt core.Packet, f *Frame) {
	if f.Dst != e.id || f.Sum != checksum(f.Src, f.Dst, f.Seq, f.Payload) {
		e.stats.BadSum++
		return
	}
	st := e.recv[f.Src]
	if st == nil {
		st = &recvState{above: make(map[uint64]bool)}
		e.recv[f.Src] = st
	}
	fresh := f.Seq > st.floor && !st.above[f.Seq]
	if fresh {
		st.above[f.Seq] = true
		for st.above[st.floor+1] {
			st.floor++
			delete(st.above, st.floor)
		}
		e.stats.Delivered++
		if e.cfg.OnDeliver != nil {
			e.cfg.OnDeliver(env, f.Src, f.Payload)
		}
	} else {
		e.stats.Duplicates++
	}
	// Ack over the hardware reverse route — even for duplicates: the dup may
	// mean our previous ack was lost.
	ack := &Ack{Src: e.id, Dst: f.Src, Seq: f.Seq, Sum: ackSum(e.id, f.Src, f.Seq)}
	_ = env.Send(pkt.Reverse, ack)
}

// onAck retires the pending frame the ack names.
func (e *Endpoint) onAck(a *Ack) {
	if a.Dst != e.id || a.Sum != ackSum(a.Src, a.Dst, a.Seq) {
		e.stats.BadSum++
		return
	}
	m := e.pend[a.Src]
	p := m[a.Seq]
	if p == nil {
		e.stats.DupAcks++
		return
	}
	// Karn's rule: only never-retransmitted frames yield RTT samples — an
	// ack for a retransmitted frame cannot be attributed to one attempt.
	if e.cfg.Adaptive && p.attempt == 1 {
		st := e.rtt[a.Src]
		if st == nil {
			st = &rttState{}
			e.rtt[a.Src] = st
		}
		st.observe(e.ticks - p.sentAt)
	}
	delete(m, a.Seq)
	if len(m) == 0 {
		delete(e.pend, a.Src)
	}
	e.stats.Acked++
}

// Node wraps an Endpoint as a standalone core.Protocol for hosts that run
// only reliable traffic (tests, the soak ledger, experiment E21). Payloads
// the endpoint doesn't recognize are ignored.
type Node struct {
	E *Endpoint
}

// NewNode builds the protocol instance for one node.
func NewNode(id core.NodeID, cfg Config) *Node {
	return &Node{E: NewEndpoint(id, cfg)}
}

var _ core.Protocol = (*Node)(nil)

// Init implements core.Protocol.
func (n *Node) Init(core.Env) {}

// Deliver implements core.Protocol.
func (n *Node) Deliver(env core.Env, pkt core.Packet) {
	n.E.Deliver(env, pkt)
}

// LinkEvent implements core.Protocol. Link state is the Router's concern
// (routes are recomputed per attempt); the endpoint itself holds no
// topology.
func (n *Node) LinkEvent(core.Env, core.Port) {}
