package reliable

import (
	"fmt"
	"testing"
	"time"

	"fastnet/internal/anr"
	"fastnet/internal/core"
	"fastnet/internal/gosim"
	"fastnet/internal/graph"
	"fastnet/internal/sim"
)

// lineRouter routes along a path graph 0-1-...-(n-1): hop-by-hop node path
// converted through the port map. The same route is used for every attempt.
func lineRouter(pm *core.PortMap, src core.NodeID) Router {
	return func(dst core.NodeID, attempt int) (anr.Header, bool) {
		path := []core.NodeID{src}
		step := core.NodeID(1)
		if dst < src {
			step = -1
		}
		for cur := src; cur != dst; {
			cur += step
			path = append(path, cur)
		}
		links, err := pm.RouteLinks(path)
		if err != nil {
			return nil, false
		}
		return anr.Direct(links), true
	}
}

// buildSim wires n reliable nodes on a path graph under the DES runtime.
func buildSim(t *testing.T, n int, faults core.MsgFaults, cfg Config, opts ...sim.Option) (*sim.Network, []*Node) {
	t.Helper()
	g := graph.Path(n)
	nodes := make([]*Node, n)
	all := append([]sim.Option{sim.WithDelays(1, 1), sim.WithMsgFaults(faults)}, opts...)
	var pm *core.PortMap
	net := sim.New(g, func(id core.NodeID) core.Protocol {
		c := cfg
		c.Route = func(dst core.NodeID, attempt int) (anr.Header, bool) {
			return lineRouter(pm, id)(dst, attempt)
		}
		nodes[id] = NewNode(id, c)
		return cmdNode{nodes[id]}
	}, all...)
	pm = net.PortMap()
	return net, nodes
}

// sendCmd is a driver-side payload: cmdNode turns it into a reliable send
// issued from inside the receiving activation.
type sendCmd struct {
	dst     core.NodeID
	payload any
}

// cmdNode wraps Node to accept driver sendCmds.
type cmdNode struct {
	*Node
}

func (n cmdNode) Deliver(env core.Env, pkt core.Packet) {
	if c, ok := pkt.Payload.(sendCmd); ok {
		if err := n.E.Send(env, c.dst, c.payload); err != nil {
			panic(err)
		}
		return
	}
	n.Node.Deliver(env, pkt)
}

// driveTicks injects ticks into node at a fixed virtual-time spacing, running
// the network quiescent between ticks.
func driveTicks(t *testing.T, net *sim.Network, node core.NodeID, ticks int) {
	t.Helper()
	for i := 0; i < ticks; i++ {
		net.Inject(net.Now()+1, node, Tick{})
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReliableExactlyOnceUnderLoss(t *testing.T) {
	var got []any
	cfg := Config{RTO: 1, MaxBackoff: 4}
	cfg.OnDeliver = func(_ core.Env, src core.NodeID, payload any) {
		got = append(got, payload)
	}
	net, nodes := buildSim(t, 4, core.MsgFaults{Drop: 0.3, Dup: 0.15, Corrupt: 0.1, Jitter: 0.1, JitterMax: 5}, cfg, sim.WithSeed(11))

	const N = 20
	for i := 0; i < N; i++ {
		p := fmt.Sprintf("msg-%d", i)
		net.Inject(net.Now()+1, 0, sendCmd{dst: 3, payload: p})
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Lossy phase: let retransmission fight the faults for a while.
	driveTicks(t, net, 0, 40)
	// Heal the network and flush: every remaining pending frame must land.
	net.SetMsgFaults(core.MsgFaults{})
	driveTicks(t, net, 0, 64)

	if nodes[0].E.Pending() != 0 {
		t.Fatalf("sender still has %d pending frames after fault-free flush", nodes[0].E.Pending())
	}
	want := make(map[any]int, N)
	for i := 0; i < N; i++ {
		want[fmt.Sprintf("msg-%d", i)] = 0
	}
	for _, p := range got {
		c, ok := want[p]
		if !ok {
			t.Fatalf("delivered phantom payload %v", p)
		}
		if c != 0 {
			t.Fatalf("payload %v delivered twice", p)
		}
		want[p] = 1
	}
	if len(got) != N {
		t.Fatalf("delivered %d payloads, want %d", len(got), N)
	}
	st := nodes[0].E.Stats()
	if st.Sent != N || st.Acked != N || st.Aborted != 0 {
		t.Fatalf("sender stats = %+v, want Sent=Acked=%d Aborted=0", st, N)
	}
	rst := nodes[3].E.Stats()
	if rst.Delivered != N {
		t.Fatalf("receiver Delivered = %d, want %d", rst.Delivered, N)
	}
	t.Logf("sender: %+v", st)
	t.Logf("receiver: %+v", rst)
}

func TestReliableDeadlineAborts(t *testing.T) {
	var aborted []*Frame
	cfg := Config{RTO: 1, MaxBackoff: 2, Deadline: 6}
	cfg.OnAbort = func(_ core.Env, f *Frame) { aborted = append(aborted, f) }
	net, nodes := buildSim(t, 3, core.MsgFaults{Drop: 1}, cfg, sim.WithSeed(3))
	net.Inject(0, 0, sendCmd{dst: 2, payload: "doomed"})
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	driveTicks(t, net, 0, 12)
	if len(aborted) != 1 || aborted[0].Payload != "doomed" {
		t.Fatalf("aborted = %v, want the one doomed frame", aborted)
	}
	if nodes[0].E.Pending() != 0 {
		t.Fatal("aborted frame still pending")
	}
	if st := nodes[0].E.Stats(); st.Aborted != 1 || st.Acked != 0 {
		t.Fatalf("stats = %+v, want Aborted=1 Acked=0", st)
	}
}

func TestReliableChecksumRejectsCorruption(t *testing.T) {
	cfg := Config{RTO: 1, MaxBackoff: 2, Deadline: 4}
	net, nodes := buildSim(t, 2, core.MsgFaults{Corrupt: 1}, cfg, sim.WithSeed(5))
	net.Inject(0, 0, sendCmd{dst: 1, payload: "x"})
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	driveTicks(t, net, 0, 8)
	rst := nodes[1].E.Stats()
	if rst.Delivered != 0 {
		t.Fatalf("corrupted frames delivered %d times, want 0", rst.Delivered)
	}
	if rst.BadSum == 0 {
		t.Fatal("checksum verification never fired despite Corrupt=1")
	}
	if st := nodes[0].E.Stats(); st.Aborted != 1 {
		t.Fatalf("sender Aborted = %d, want 1 (every attempt corrupted)", st.Aborted)
	}
}

func TestReliableDedupUnderPureDup(t *testing.T) {
	var got []any
	cfg := Config{RTO: 2, MaxBackoff: 4}
	cfg.OnDeliver = func(_ core.Env, _ core.NodeID, payload any) { got = append(got, payload) }
	net, nodes := buildSim(t, 3, core.MsgFaults{Dup: 1}, cfg, sim.WithSeed(9))
	for i := 0; i < 5; i++ {
		net.Inject(net.Now()+1, 0, sendCmd{dst: 2, payload: i})
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
	}
	driveTicks(t, net, 0, 10)
	if len(got) != 5 {
		t.Fatalf("delivered %d payloads, want exactly 5 despite Dup=1", len(got))
	}
	rst := nodes[2].E.Stats()
	if rst.Duplicates == 0 {
		t.Fatal("dedup window never fired despite Dup=1")
	}
	if nodes[0].E.Pending() != 0 {
		t.Fatalf("%d frames still pending", nodes[0].E.Pending())
	}
}

// TestReliableGosim runs the exactly-once scenario on the goroutine runtime:
// real asynchrony, fault profile on, driver ticks via injection.
func TestReliableGosim(t *testing.T) {
	g := graph.Path(3)
	type rec struct {
		src core.NodeID
		p   any
	}
	done := make(chan rec, 64)
	nodes := make([]*Node, 3)
	var pm *core.PortMap
	net := gosim.New(g, func(id core.NodeID) core.Protocol {
		cfg := Config{RTO: 1, MaxBackoff: 4}
		cfg.Route = func(dst core.NodeID, attempt int) (anr.Header, bool) {
			return lineRouter(pm, id)(dst, attempt)
		}
		if id == 2 {
			cfg.OnDeliver = func(_ core.Env, src core.NodeID, payload any) {
				done <- rec{src, payload}
			}
		}
		nodes[id] = NewNode(id, cfg)
		return cmdNode{nodes[id]}
	}, gosim.WithMsgFaults(core.MsgFaults{Drop: 0.25, Dup: 0.1, Corrupt: 0.1, Jitter: 0.1}))
	defer net.Shutdown()
	pm = net.PortMap()

	const N = 10
	for i := 0; i < N; i++ {
		net.Inject(0, sendCmd{dst: 2, payload: i})
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		if err := net.AwaitQuiescence(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		if nodes[0].E.Pending() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("still %d pending at deadline", nodes[0].E.Pending())
		}
		if i == 30 {
			// Heal the fabric so the tail flushes deterministically.
			net.SetMsgFaults(core.MsgFaults{})
		}
		net.Inject(0, Tick{})
	}
	close(done)
	seen := make(map[any]bool)
	for r := range done {
		if seen[r.p] {
			t.Fatalf("payload %v delivered twice", r.p)
		}
		seen[r.p] = true
	}
	if len(seen) != N {
		t.Fatalf("delivered %d distinct payloads, want %d", len(seen), N)
	}
}
