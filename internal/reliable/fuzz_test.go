package reliable

import (
	"fmt"
	"testing"

	"fastnet/internal/core"
	"fastnet/internal/sim"
)

// FuzzReliableDelivery throws randomized lossy-link schedules at the
// end-to-end layer and checks its two safety properties always hold:
// never a duplicate delivery, never a phantom delivery — and, after a
// fault-free flush, liveness: everything not aborted arrives.
func FuzzReliableDelivery(f *testing.F) {
	f.Add(int64(1), byte(30), byte(15), byte(10), byte(10), byte(5))
	f.Add(int64(42), byte(0), byte(0), byte(0), byte(0), byte(1))
	f.Add(int64(7), byte(90), byte(90), byte(90), byte(90), byte(8))
	f.Add(int64(-3), byte(100), byte(0), byte(100), byte(0), byte(3))
	f.Fuzz(func(t *testing.T, seed int64, drop, dup, corrupt, jitter, nmsgs byte) {
		// Percent-encoded probabilities, capped so the partitioned roll stays
		// a valid distribution; short routes bound dup branching.
		faults := core.MsgFaults{
			Drop:      float64(drop%101) / 100,
			Dup:       float64(dup%101) / 100,
			Corrupt:   float64(corrupt%101) / 100,
			Jitter:    float64(jitter%101) / 100,
			JitterMax: 4,
		}
		total := faults.Drop + faults.Dup + faults.Corrupt + faults.Jitter
		if total > 1 {
			faults = faults.Scale(1 / total)
		}
		n := int(nmsgs%12) + 1

		var got []any
		cfg := Config{RTO: 1, MaxBackoff: 4}
		cfg.OnDeliver = func(_ core.Env, _ core.NodeID, payload any) {
			got = append(got, payload)
		}
		net, nodes := buildSim(t, 3, faults, cfg, sim.WithSeed(seed), sim.WithEventBudget(2_000_000))
		for i := 0; i < n; i++ {
			net.Inject(net.Now()+1, 0, sendCmd{dst: 2, payload: fmt.Sprintf("m%d", i)})
			if _, err := net.Run(); err != nil {
				t.Fatal(err)
			}
		}
		driveTicks(t, net, 0, 16)
		net.SetMsgFaults(core.MsgFaults{})
		driveTicks(t, net, 0, 64)

		if p := nodes[0].E.Pending(); p != 0 {
			t.Fatalf("%d frames pending after fault-free flush (seed=%d faults=%v)", p, seed, faults)
		}
		seen := make(map[any]bool)
		for _, p := range got {
			if seen[p] {
				t.Fatalf("duplicate delivery of %v (seed=%d faults=%v)", p, seed, faults)
			}
			seen[p] = true
		}
		st := nodes[0].E.Stats()
		if int(st.Acked+st.Aborted) != n {
			t.Fatalf("acked(%d)+aborted(%d) != sent(%d)", st.Acked, st.Aborted, n)
		}
		// No aborts are configured (Deadline=0), so everything must land.
		if len(seen) != n {
			t.Fatalf("delivered %d distinct payloads, want %d (seed=%d faults=%v)", len(seen), n, seed, faults)
		}
	})
}
