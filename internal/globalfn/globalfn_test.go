package globalfn

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSBinomialRegime(t *testing.T) {
	// Example 1 (C=0, P=1): S(k) = 2^(k-1).
	p := Params{C: 0, P: 1}
	for k := Time(1); k <= 20; k++ {
		got, err := p.S(k)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1) << (k - 1)
		if got != want {
			t.Fatalf("S(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestSFibonacciRegime(t *testing.T) {
	// Example 3 (C=1, P=1): S follows the Fibonacci numbers.
	p := Params{C: 1, P: 1}
	fib := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	for k := 1; k < len(fib); k++ {
		got, err := p.S(Time(k))
		if err != nil {
			t.Fatal(err)
		}
		if got != fib[k] {
			t.Fatalf("S(%d) = %d, want F(%d) = %d", k, got, k, fib[k])
		}
	}
}

func TestSTraditionalBlowsUp(t *testing.T) {
	// Example 2 (C=1, P=0): the recursion degenerates.
	p := Params{C: 1, P: 0}
	if _, err := p.S(5); !errors.Is(err, ErrTraditional) {
		t.Fatalf("err = %v, want ErrTraditional", err)
	}
	if _, err := p.OptimalTime(10); !errors.Is(err, ErrTraditional) {
		t.Fatalf("err = %v, want ErrTraditional", err)
	}
	if _, err := p.OptimalTree(5); !errors.Is(err, ErrTraditional) {
		t.Fatalf("err = %v, want ErrTraditional", err)
	}
}

func TestSBaseCases(t *testing.T) {
	p := Params{C: 2, P: 3}
	cases := []struct {
		t    Time
		want int64
	}{
		{0, 0}, {2, 0}, {3, 1}, {7, 1}, {8, 2}, {10, 2}, {11, 3},
	}
	for _, tc := range cases {
		got, err := p.S(tc.t)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("S(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestSMonotoneQuick(t *testing.T) {
	f := func(cRaw, pRaw uint8, tRaw uint16) bool {
		p := Params{C: Time(cRaw % 6), P: Time(pRaw%5) + 1}
		tt := Time(tRaw % 200)
		a, err := p.S(tt)
		if errors.Is(err, ErrOverflow) {
			return true // growth so fast that int64 overflows: fine
		}
		if err != nil {
			return false
		}
		b, err := p.S(tt + 1)
		if errors.Is(err, ErrOverflow) {
			return true
		}
		if err != nil {
			return false
		}
		return b >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSRejectsNegative(t *testing.T) {
	if _, err := (Params{C: -1, P: 1}).S(5); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v, want ErrBadParams", err)
	}
}

func TestTruncate(t *testing.T) {
	p := Params{C: 2, P: 3}
	// Grid: i*3 + j*5, i >= 1: 3, 6, 8, 9, 11, 12, 13, 14, ...
	cases := []struct{ in, want Time }{
		{0, 0}, {2, 0}, {3, 3}, {5, 3}, {7, 6}, {8, 8}, {10, 9}, {13, 13},
	}
	for _, tc := range cases {
		if got := p.Truncate(tc.in); got != tc.want {
			t.Fatalf("Truncate(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestOptimalTimeBinomial(t *testing.T) {
	// C=0, P=1: n nodes need ceil(log2 n) + 1 time units.
	p := Params{C: 0, P: 1}
	cases := []struct {
		n    int64
		want Time
	}{
		{1, 1}, {2, 2}, {3, 3}, {4, 3}, {5, 4}, {8, 4}, {9, 5}, {1024, 11},
	}
	for _, tc := range cases {
		got, err := p.OptimalTime(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("OptimalTime(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestOptimalTimeMatchesS(t *testing.T) {
	// min{t : S(t) >= n} as a property across regimes.
	for _, p := range []Params{{C: 0, P: 1}, {C: 1, P: 1}, {C: 3, P: 2}, {C: 1, P: 4}} {
		for _, n := range []int64{1, 2, 3, 7, 20, 100, 999} {
			tm, err := p.OptimalTime(n)
			if err != nil {
				t.Fatal(err)
			}
			at, err := p.S(tm)
			if err != nil {
				t.Fatal(err)
			}
			if at < n {
				t.Fatalf("P=%v: S(OptimalTime(%d)=%d) = %d < n", p, n, tm, at)
			}
			before, err := p.S(tm - 1)
			if err != nil {
				t.Fatal(err)
			}
			if before >= n {
				t.Fatalf("P=%v: S(%d) = %d >= %d already", p, tm-1, before, n)
			}
		}
	}
}

func TestOptimalTreeSizeEqualsS(t *testing.T) {
	for _, p := range []Params{{C: 0, P: 1}, {C: 1, P: 1}, {C: 2, P: 3}, {C: 5, P: 1}} {
		for tt := Time(1); tt <= 20; tt++ {
			want, err := p.S(tt)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := p.OptimalTree(tt)
			if err != nil {
				t.Fatal(err)
			}
			if int64(tr.Size) != want {
				t.Fatalf("C=%d P=%d: |OT(%d)| = %d, want S = %d", p.C, p.P, tt, tr.Size, want)
			}
		}
	}
}

func TestBinomialTreeShape(t *testing.T) {
	tr := Binomial(4) // 16 nodes
	if tr.Size != 16 {
		t.Fatalf("size = %d, want 16", tr.Size)
	}
	// A binomial tree of order k has root degree k and depth k.
	if len(tr.Children[0]) != 4 {
		t.Fatalf("root degree = %d, want 4", len(tr.Children[0]))
	}
	if tr.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", tr.Depth())
	}
}

func TestStarShape(t *testing.T) {
	tr := Star(7)
	if tr.Size != 7 || len(tr.Children[0]) != 6 || tr.Depth() != 1 {
		t.Fatalf("bad star: %+v", tr)
	}
	if len(tr.Leaves()) != 6 {
		t.Fatalf("leaves = %v", tr.Leaves())
	}
}

func TestPruneTo(t *testing.T) {
	tr := Binomial(4)
	pr, err := tr.PruneTo(9)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Size != 9 {
		t.Fatalf("size = %d, want 9", pr.Size)
	}
	// Parent pointers must stay within the kept prefix.
	for id := 1; id < pr.Size; id++ {
		if pr.Parent[id] >= id {
			t.Fatalf("BFS prefix violated: parent[%d] = %d", id, pr.Parent[id])
		}
	}
	if _, err := tr.PruneTo(0); err == nil {
		t.Fatal("prune to 0 must fail")
	}
	if _, err := tr.PruneTo(17); err == nil {
		t.Fatal("prune beyond size must fail")
	}
}

func TestExecuteComputesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Params{C: 2, P: 3}
	tr, err := p.OptimalTree(40)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Value, tr.Size)
	var wantSum Value
	wantMax := Value(-1 << 62)
	for i := range inputs {
		inputs[i] = Value(rng.Intn(1000) - 500)
		wantSum += inputs[i]
		if inputs[i] > wantMax {
			wantMax = inputs[i]
		}
	}
	sum, err := Execute(tr, p, inputs, Sum, false)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Value != wantSum {
		t.Fatalf("sum = %d, want %d", sum.Value, wantSum)
	}
	max, err := Execute(tr, p, inputs, Max, false)
	if err != nil {
		t.Fatal(err)
	}
	if max.Value != wantMax {
		t.Fatalf("max = %d, want %d", max.Value, wantMax)
	}
}

func TestExecuteMatchesOptimalTime(t *testing.T) {
	// The headline §5 check: simulating OT(t*) under exact worst-case
	// delays finishes at exactly t* = OptimalTime(n).
	for _, p := range []Params{{C: 0, P: 1}, {C: 1, P: 1}, {C: 2, P: 3}, {C: 4, P: 1}, {C: 1, P: 5}} {
		for _, n := range []int64{1, 2, 5, 17, 64, 200} {
			tstar, err := p.OptimalTime(n)
			if err != nil {
				t.Fatal(err)
			}
			full, err := p.OptimalTree(tstar)
			if err != nil {
				t.Fatal(err)
			}
			inputs := make([]Value, full.Size)
			for i := range inputs {
				inputs[i] = Value(i)
			}
			res, err := Execute(full, p, inputs, Sum, false)
			if err != nil {
				t.Fatal(err)
			}
			if res.Finish != tstar {
				t.Fatalf("C=%d P=%d n=%d: finish = %d, want t* = %d (size %d)",
					p.C, p.P, n, res.Finish, tstar, full.Size)
			}
			// The pruned n-node tree finishes no later.
			pruned, err := full.PruneTo(int(n))
			if err != nil {
				t.Fatal(err)
			}
			pres, err := Execute(pruned, p, inputs[:n], Sum, false)
			if err != nil {
				t.Fatal(err)
			}
			if pres.Finish > tstar {
				t.Fatalf("C=%d P=%d n=%d: pruned finish = %d > t* = %d",
					p.C, p.P, n, pres.Finish, tstar)
			}
		}
	}
}

func TestExecuteOnCompleteGraphIdentical(t *testing.T) {
	p := Params{C: 1, P: 2}
	tr, err := p.OptimalTree(16)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Value, tr.Size)
	for i := range inputs {
		inputs[i] = Value(3 * i)
	}
	onTree, err := Execute(tr, p, inputs, Sum, false)
	if err != nil {
		t.Fatal(err)
	}
	onComplete, err := Execute(tr, p, inputs, Sum, true)
	if err != nil {
		t.Fatal(err)
	}
	if onTree.Finish != onComplete.Finish || onTree.Value != onComplete.Value {
		t.Fatalf("tree run (%d, %d) != complete-graph run (%d, %d)",
			onTree.Finish, onTree.Value, onComplete.Finish, onComplete.Value)
	}
}

func TestStarTimePrediction(t *testing.T) {
	p := Params{C: 3, P: 2}
	for _, n := range []int{1, 2, 5, 30} {
		tr := Star(n)
		inputs := make([]Value, n)
		for i := range inputs {
			inputs[i] = 1
		}
		res, err := Execute(tr, p, inputs, Sum, false)
		if err != nil {
			t.Fatal(err)
		}
		if res.Finish != StarTime(int64(n), p) {
			t.Fatalf("n=%d: star finish = %d, predicted %d", n, res.Finish, StarTime(int64(n), p))
		}
		if res.Value != Value(n) {
			t.Fatalf("n=%d: value = %d, want %d", n, res.Value, n)
		}
	}
}

func TestOptimalBeatsStarWhenSoftwareDominates(t *testing.T) {
	// P >> C: the star pays (n-1)P serialization at the root; the optimal
	// tree parallelizes: the new model does not degenerate even on a
	// complete graph (the paper's §5 punchline).
	p := Params{C: 1, P: 10}
	n := int64(64)
	tstar, err := p.OptimalTime(n)
	if err != nil {
		t.Fatal(err)
	}
	if st := StarTime(n, p); tstar >= st {
		t.Fatalf("optimal %d >= star %d with P >> C", tstar, st)
	}
	// C >> P, small n: the star is optimal (single message latency
	// dominates); OptimalTime must not beat physics: it equals the star's
	// time for n = 2.
	p2 := Params{C: 100, P: 1}
	t2, err := p2.OptimalTime(2)
	if err != nil {
		t.Fatal(err)
	}
	if t2 != StarTime(2, p2) {
		t.Fatalf("two nodes: optimal %d != star %d", t2, StarTime(2, p2))
	}
}

func TestExecuteErrors(t *testing.T) {
	if _, err := Execute(&Tree{}, Params{C: 0, P: 1}, nil, Sum, false); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("err = %v, want ErrEmptyTree", err)
	}
	tr := Star(3)
	if _, err := Execute(tr, Params{C: 0, P: 1}, make([]Value, 2), Sum, false); err == nil {
		t.Fatal("input length mismatch must fail")
	}
	if _, err := Execute(tr, Params{C: -1, P: 1}, make([]Value, 3), Sum, false); err == nil {
		t.Fatal("negative delays must fail")
	}
}

func TestExecuteP0Star(t *testing.T) {
	// The traditional regime (P=0) still simulates: a star of any size
	// finishes at C (example 2's degenerate optimum).
	p := Params{C: 4, P: 0}
	n := 50
	tr := Star(n)
	inputs := make([]Value, n)
	res, err := Execute(tr, p, inputs, Sum, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish != 4 {
		t.Fatalf("finish = %d, want C = 4", res.Finish)
	}
}

func TestGridUpTo(t *testing.T) {
	p := Params{C: 2, P: 3}
	grid := p.gridUpTo(12)
	want := []Time{3, 6, 8, 9, 11, 12}
	if len(grid) != len(want) {
		t.Fatalf("grid = %v, want %v", grid, want)
	}
	for i := range want {
		if grid[i] != want[i] {
			t.Fatalf("grid = %v, want %v", grid, want)
		}
	}
}
