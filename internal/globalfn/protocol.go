package globalfn

import (
	"errors"
	"fmt"

	"fastnet/internal/anr"
	"fastnet/internal/core"
	"fastnet/internal/graph"
	"fastnet/internal/sim"
)

// Value is a distributed input or partial result.
type Value int64

// Combine folds two partial results; it must be associative and commutative
// (the paper's function class).
type Combine func(a, b Value) Value

// Standard globally sensitive functions.
var (
	// Max is globally sensitive on any input vector whose entries can be
	// exceeded (raise any input above the current maximum).
	Max Combine = func(a, b Value) Value {
		if a > b {
			return a
		}
		return b
	}
	// Sum is globally sensitive everywhere.
	Sum Combine = func(a, b Value) Value { return a + b }
)

// start triggers a leaf's initial send.
type start struct{}

// partial carries a subtree's folded value to its parent.
type partial struct {
	Value Value
}

// proto is the tree-based algorithm at one node: wait for all children,
// fold, forward (§5.2's "tree based algorithm"). The fold of the node's own
// input and the forwarding happen within the last child's activation, so an
// interior node costs exactly one activation per child and a leaf exactly
// one activation — matching the S(t) recursion's accounting.
type proto struct {
	id      core.NodeID
	cfg     *runCfg
	acc     Value
	pending int
	decided bool
	result  Value
}

type runCfg struct {
	tree    *Tree
	inputs  []Value
	combine Combine
}

var _ core.Protocol = (*proto)(nil)

func (p *proto) Init(core.Env) {
	p.acc = p.cfg.inputs[p.id]
	p.pending = len(p.cfg.tree.Children[p.id])
}

func (p *proto) LinkEvent(core.Env, core.Port) {}

func (p *proto) Deliver(env core.Env, pkt core.Packet) {
	switch m := pkt.Payload.(type) {
	case start:
		if p.pending == 0 {
			p.finish(env)
		}
	case *partial:
		if p.pending == 0 {
			panic(fmt.Sprintf("globalfn: node %d got an unexpected partial", p.id))
		}
		p.acc = p.cfg.combine(p.acc, m.Value)
		p.pending--
		if p.pending == 0 {
			p.finish(env)
		}
	}
}

func (p *proto) finish(env core.Env) {
	if p.id == 0 {
		p.decided = true
		p.result = p.acc
		return
	}
	parent := core.NodeID(p.cfg.tree.Parent[p.id])
	port, ok := env.PortToward(parent)
	if !ok {
		panic(fmt.Sprintf("globalfn: node %d not adjacent to parent %d", p.id, parent))
	}
	if err := env.Send(anr.Direct([]anr.ID{port.Local}), &partial{Value: p.acc}); err != nil {
		panic(fmt.Sprintf("globalfn: send to parent: %v", err))
	}
}

// Result reports one execution of the tree-based algorithm.
type Result struct {
	// Finish is the virtual time of the root's final activation.
	Finish Time
	// Value is the function value computed at the root (the paper's node 1).
	Value   Value
	Metrics core.Metrics
}

// ErrEmptyTree is returned when the tree has no nodes.
var ErrEmptyTree = errors.New("globalfn: empty tree")

// Execute runs the tree-based algorithm over the given tree with exact
// worst-case delays. By default the simulated topology is the tree itself
// (the algorithm only uses tree edges); set onComplete to run on the full
// complete graph instead — the paper's setting — which is identical in
// behavior but quadratic in memory. Extra simulator options (e.g. tracing)
// may be appended.
func Execute(t *Tree, p Params, inputs []Value, combine Combine, onComplete bool, opts ...sim.Option) (Result, error) {
	if t.Size == 0 {
		return Result{}, ErrEmptyTree
	}
	if len(inputs) != t.Size {
		return Result{}, fmt.Errorf("globalfn: %d inputs for %d nodes", len(inputs), t.Size)
	}
	if p.C < 0 || p.P < 0 {
		return Result{}, ErrBadParams
	}
	var g *graph.Graph
	if onComplete {
		g = graph.Complete(t.Size)
	} else {
		g = graph.New(t.Size)
		for id := 1; id < t.Size; id++ {
			g.MustAddEdge(core.NodeID(id), core.NodeID(t.Parent[id]))
		}
	}
	cfg := &runCfg{tree: t, inputs: inputs, combine: combine}
	base := []sim.Option{sim.WithDelays(core.Time(p.C), core.Time(p.P)), sim.WithDmax(t.Size)}
	net := sim.New(g, func(id core.NodeID) core.Protocol {
		return &proto{id: id, cfg: cfg}
	}, append(base, opts...)...)
	for _, leaf := range t.Leaves() {
		net.Inject(0, core.NodeID(leaf), start{})
	}
	finish, err := net.Run()
	if err != nil {
		return Result{}, err
	}
	root, ok := net.Protocol(0).(*proto)
	if !ok || !root.decided {
		return Result{}, fmt.Errorf("globalfn: root did not decide")
	}
	return Result{Finish: Time(finish), Value: root.result, Metrics: net.Metrics()}, nil
}
