// Package globalfn implements §5 of the paper: optimal distributed
// computation of globally sensitive functions on a complete network with
// hardware delay C per hop and software delay P per NCU activation.
//
// Theorem 6 shows some worst-case-optimal algorithm is tree based: leaves
// send their inputs, every interior node combines all children's partial
// results with its own input and forwards one message to its parent. The
// optimal tree obeys
//
//	OT(t) = OT(t−P) ⊕ OT(t−C−P)    S(t) = S(t−P) + S(t−C−P)
//
// with S(t)=0 for t<P and S(t)=1 for P ≤ t < 2P+C: a root that finishes at
// time t can absorb one more child whose subtree finished at t−C−P. The
// paper's worked examples fall out as special cases: C=0,P=1 gives binomial
// trees (S(k)=2^(k−1)); C=1,P=1 gives Fibonacci growth; P=0 recovers the
// traditional model, where a star of unbounded size finishes in constant
// time and the recursion blows up.
package globalfn

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Time is virtual time, compatible with the simulator's core.Time.
type Time int64

// Errors of the recursion.
var (
	// ErrTraditional is returned for P = 0: with free software the star
	// gathers any number of nodes in 2P+C time — the recursion (and the
	// new model's distinction) degenerates, exactly as the paper's example
	// 2 notes.
	ErrTraditional = errors.New("globalfn: P = 0 degenerates to the traditional model (unbounded star)")
	// ErrOverflow is returned when S(t) exceeds int64.
	ErrOverflow = errors.New("globalfn: tree size overflows int64")
	// ErrBadParams is returned for negative parameters.
	ErrBadParams = errors.New("globalfn: delays must be non-negative")
)

// Params fixes one (C, P) regime.
type Params struct {
	C Time // worst-case hardware (per hop) delay
	P Time // worst-case software (per activation) delay
}

func (p Params) validate() error {
	if p.C < 0 || p.P < 0 {
		return ErrBadParams
	}
	if p.P == 0 {
		return ErrTraditional
	}
	return nil
}

// Truncate returns the largest achievable completion time <= t, i.e. the
// largest value i*P + j*(C+P) <= t with i >= 1, j >= 0 (every tree-based
// schedule completes at such a point), or 0 if t < P.
func (p Params) Truncate(t Time) Time {
	if t < p.P {
		return 0
	}
	best := Time(0)
	// j is bounded by t/(C+P); for each j take the largest i.
	step := p.C + p.P
	for j := Time(0); j*step+p.P <= t; j++ {
		i := (t - j*step) / p.P // >= 1 by the loop condition
		if v := i*p.P + j*step; v > best {
			best = v
		}
	}
	return best
}

// S returns the maximum number of nodes over which a tree-based algorithm
// can compute any globally sensitive function within time t (the size of
// the optimal tree OT(t)).
func (p Params) S(t Time) (int64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	memo := make(map[Time]int64)
	return p.s(t, memo)
}

func (p Params) s(t Time, memo map[Time]int64) (int64, error) {
	if t < p.P {
		return 0, nil
	}
	if t < 2*p.P+p.C {
		return 1, nil
	}
	if v, ok := memo[t]; ok {
		return v, nil
	}
	a, err := p.s(t-p.P, memo)
	if err != nil {
		return 0, err
	}
	b, err := p.s(t-p.C-p.P, memo)
	if err != nil {
		return 0, err
	}
	if a > math.MaxInt64-b {
		return 0, ErrOverflow
	}
	memo[t] = a + b
	return a + b, nil
}

// OptimalTime returns the smallest worst-case completion time t at which a
// tree-based algorithm spans at least n nodes, i.e. min{t : S(t) >= n}.
// Only times of the form i*P + j*C arise (the paper's n² grid); the
// returned value is exact.
func (p Params) OptimalTime(n int64) (Time, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("globalfn: need at least one node, got %d", n)
	}
	if n == 1 {
		return p.P, nil
	}
	memo := make(map[Time]int64)
	// Exponential search for an upper bound.
	hi := 2*p.P + p.C
	for {
		v, err := p.s(hi, memo)
		if err != nil {
			return 0, err
		}
		if v >= n {
			break
		}
		hi *= 2
	}
	// Candidate completion times are i*P + j*(C+P): i activations on the
	// root's critical path plus j full child-message latencies. Enumerate
	// the grid up to hi and binary-search it.
	grid := p.gridUpTo(hi)
	idx := sort.Search(len(grid), func(k int) bool {
		v, err := p.s(grid[k], memo)
		return err == nil && v >= n
	})
	if idx == len(grid) {
		return 0, fmt.Errorf("globalfn: no grid point up to %d reaches n=%d", hi, n)
	}
	return grid[idx], nil
}

// gridUpTo enumerates the sorted distinct values i*P + j*(C+P) <= hi with
// i >= 1, j >= 0.
func (p Params) gridUpTo(hi Time) []Time {
	set := make(map[Time]struct{})
	step := p.C + p.P
	for j := Time(0); j*step+p.P <= hi; j++ {
		for i := Time(1); i*p.P+j*step <= hi; i++ {
			set[i*p.P+j*step] = struct{}{}
		}
	}
	out := make([]Time, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Tree is an explicit optimal aggregation tree. Node IDs are 0..Size-1 with
// the root at 0 (the paper's "node 1").
type Tree struct {
	Size     int
	Parent   []int   // Parent[0] = -1
	Children [][]int // children in attachment order (earliest-finishing last)
}

// node is the construction-time shape before ID assignment.
type node struct {
	children []*node
}

func (n *node) count() int {
	c := 1
	for _, ch := range n.children {
		c += ch.count()
	}
	return c
}

// OptimalTree materializes OT(t) for the given parameters. The returned
// tree has exactly S(t) nodes; running the tree-based algorithm over it with
// exact worst-case delays finishes no later than t, and exactly at t when t
// = OptimalTime(S(t)) (otherwise a smaller time would span the same tree,
// contradicting minimality).
func (p Params) OptimalTree(t Time) (*Tree, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if n, err := p.S(t); err != nil {
		return nil, err
	} else if n > 1<<22 {
		return nil, fmt.Errorf("globalfn: OT(%d) has %d nodes; too large to materialize", t, n)
	}
	root := p.ot(t)
	if root == nil {
		return &Tree{}, nil
	}
	return freeze(root), nil
}

func (p Params) ot(t Time) *node {
	if t < p.P {
		return nil
	}
	if t < 2*p.P+p.C {
		return &node{}
	}
	a := p.ot(t - p.P)
	b := p.ot(t - p.C - p.P)
	if b != nil {
		a.children = append(a.children, b)
	}
	return a
}

// freeze assigns breadth-first IDs (root = 0) and builds the arrays.
func freeze(root *node) *Tree {
	n := root.count()
	tr := &Tree{
		Size:     n,
		Parent:   make([]int, n),
		Children: make([][]int, n),
	}
	tr.Parent[0] = -1
	type qe struct {
		n  *node
		id int
	}
	queue := []qe{{n: root, id: 0}}
	next := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ch := range cur.n.children {
			tr.Parent[next] = cur.id
			tr.Children[cur.id] = append(tr.Children[cur.id], next)
			queue = append(queue, qe{n: ch, id: next})
			next++
		}
	}
	return tr
}

// PruneTo returns a subtree with exactly n nodes (the first n in BFS order,
// which is prefix-closed, so it remains a valid tree). Running the algorithm
// over the pruned tree finishes no later than over the full tree.
func (t *Tree) PruneTo(n int) (*Tree, error) {
	if n < 1 || n > t.Size {
		return nil, fmt.Errorf("globalfn: cannot prune %d-node tree to %d", t.Size, n)
	}
	pr := &Tree{
		Size:     n,
		Parent:   append([]int(nil), t.Parent[:n]...),
		Children: make([][]int, n),
	}
	for id := 1; id < n; id++ {
		p := pr.Parent[id]
		pr.Children[p] = append(pr.Children[p], id)
	}
	return pr, nil
}

// Leaves returns the IDs of all leaves.
func (t *Tree) Leaves() []int {
	var out []int
	for id := 0; id < t.Size; id++ {
		if len(t.Children[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Depth returns the maximum root-to-leaf edge count.
func (t *Tree) Depth() int {
	depth := make([]int, t.Size)
	max := 0
	for id := 1; id < t.Size; id++ {
		depth[id] = depth[t.Parent[id]] + 1 // BFS order: parent precedes child
		if depth[id] > max {
			max = depth[id]
		}
	}
	return max
}

// Star returns the star "tree": node 0 with n-1 direct children — the
// traditional model's optimum, used as the comparison algorithm in the
// paper's §5 discussion.
func Star(n int) *Tree {
	t := &Tree{
		Size:     n,
		Parent:   make([]int, n),
		Children: make([][]int, n),
	}
	t.Parent[0] = -1
	for id := 1; id < n; id++ {
		t.Parent[id] = 0
		t.Children[0] = append(t.Children[0], id)
	}
	return t
}

// Binomial returns the binomial tree of order k (2^k nodes): the optimal
// tree of the C=0, P=1 regime (paper example 1).
func Binomial(k int) *Tree {
	p := Params{C: 0, P: 1}
	tr, err := p.OptimalTree(Time(k + 1))
	if err != nil {
		panic(err) // P=1 cannot degenerate
	}
	return tr
}

// StarTime predicts the star algorithm's worst-case completion under
// exact delays: the n-1 leaf activations run in parallel (P), the messages
// take C, and the root serializes n-1 activations of P each.
func StarTime(n int64, p Params) Time {
	if n <= 1 {
		return p.P
	}
	return p.P + p.C + Time(n-1)*p.P
}
