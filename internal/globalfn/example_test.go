package globalfn_test

import (
	"fmt"

	"fastnet/internal/globalfn"
)

// The §5 recursion in the paper's three worked regimes.
func ExampleParams_S() {
	binomial := globalfn.Params{C: 0, P: 1}  // example 1
	fibonacci := globalfn.Params{C: 1, P: 1} // example 3
	for k := globalfn.Time(1); k <= 6; k++ {
		a, _ := binomial.S(k)
		b, _ := fibonacci.S(k)
		fmt.Printf("S(%d): binomial=%d fibonacci=%d\n", k, a, b)
	}
	// Output:
	// S(1): binomial=1 fibonacci=1
	// S(2): binomial=2 fibonacci=1
	// S(3): binomial=4 fibonacci=2
	// S(4): binomial=8 fibonacci=3
	// S(5): binomial=16 fibonacci=5
	// S(6): binomial=32 fibonacci=8
}

// Predict the optimal completion time for n inputs and verify it by
// simulation.
func ExampleParams_OptimalTime() {
	p := globalfn.Params{C: 2, P: 3}
	tstar, err := p.OptimalTime(50)
	if err != nil {
		panic(err)
	}
	tree, err := p.OptimalTree(tstar)
	if err != nil {
		panic(err)
	}
	inputs := make([]globalfn.Value, tree.Size)
	for i := range inputs {
		inputs[i] = 1
	}
	res, err := globalfn.Execute(tree, p, inputs, globalfn.Sum, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("t*=%d simulated=%d nodes=%d sum=%d\n", tstar, res.Finish, tree.Size, res.Value)
	// Output:
	// t*=28 simulated=28 nodes=55 sum=55
}

// The traditional model (P=0) degenerates — the paper's example 2.
func ExampleParams_S_traditional() {
	p := globalfn.Params{C: 1, P: 0}
	_, err := p.S(5)
	fmt.Println(err)
	// Output:
	// globalfn: P = 0 degenerates to the traditional model (unbounded star)
}
