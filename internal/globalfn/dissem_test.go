package globalfn

import (
	"errors"
	"testing"
)

func TestDisseminateReachesAll(t *testing.T) {
	p := Params{C: 1, P: 1}
	tr, err := p.OptimalTree(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Disseminate(tr, p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != tr.Size {
		t.Fatalf("reached = %d, want %d", res.Reached, tr.Size)
	}
}

func TestDisseminateDualityExact(t *testing.T) {
	// Time-reversal duality: disseminating over OT(t*) with one send per
	// activation finishes at exactly t* = OptimalTime(n) — the same time
	// as the §5 gather (the postal-model connection).
	for _, p := range []Params{{C: 0, P: 1}, {C: 1, P: 1}, {C: 2, P: 3}, {C: 4, P: 1}, {C: 1, P: 5}} {
		for _, n := range []int64{2, 5, 17, 64, 200} {
			tstar, err := p.OptimalTime(n)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := p.OptimalTree(tstar)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Disseminate(tr, p, 7)
			if err != nil {
				t.Fatal(err)
			}
			if res.Finish != tstar {
				t.Fatalf("C=%d P=%d n=%d: dissemination finish = %d, want t* = %d",
					p.C, p.P, n, res.Finish, tstar)
			}
			// And it matches the gather over the same tree.
			gres, err := Execute(tr, p, make([]Value, tr.Size), Sum, false)
			if err != nil {
				t.Fatal(err)
			}
			if gres.Finish != res.Finish {
				t.Fatalf("C=%d P=%d n=%d: gather %d != dissemination %d",
					p.C, p.P, n, gres.Finish, res.Finish)
			}
		}
	}
}

func TestDisseminateSingleNode(t *testing.T) {
	p := Params{C: 3, P: 2}
	tr, err := p.OptimalTree(p.P)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size != 1 {
		t.Fatalf("size = %d, want 1", tr.Size)
	}
	res, err := Disseminate(tr, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish != Time(p.P) {
		t.Fatalf("finish = %d, want P", res.Finish)
	}
}

func TestDisseminateStarSerializesSends(t *testing.T) {
	// Without free multicast the star root sends one message per P: the
	// last leaf gets the value at P*(n-1) + C + P.
	p := Params{C: 2, P: 3}
	n := 10
	res, err := Disseminate(Star(n), p, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := Time(int64(p.P)*int64(n-1) + int64(p.C) + int64(p.P))
	if res.Finish != want {
		t.Fatalf("finish = %d, want %d", res.Finish, want)
	}
}

func TestDisseminateErrors(t *testing.T) {
	if _, err := Disseminate(&Tree{}, Params{C: 0, P: 1}, 0); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("err = %v, want ErrEmptyTree", err)
	}
	if _, err := Disseminate(Star(3), Params{C: -1, P: 1}, 0); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v, want ErrBadParams", err)
	}
}
