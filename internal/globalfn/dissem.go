package globalfn

import (
	"errors"
	"fmt"

	"fastnet/internal/anr"
	"fastnet/internal/core"
	"fastnet/internal/graph"
	"fastnet/internal/sim"
)

// This file implements the time-reversal dual of the §5 gather: one-to-all
// dissemination of a value over the same optimal trees. The paper's
// follow-up line of work ([BK92]'s postal model, and later LogP [CKPS93])
// studies exactly this broadcast problem; under the (C, P) model the
// reversed gather schedule is a valid dissemination schedule, so OT(t)
// disseminates to S(t) nodes in time t.
//
// The gather's free multicast is deliberately not used here: a sender emits
// one child message per activation (it re-activates itself with a
// zero-length self route), matching the postal model's one-send-per-P
// discipline and making the dual exact.

// dValue delivers the disseminated value.
type dValue struct {
	Value Value
}

// dTick is the sender's self-reminder that triggers its next child send.
type dTick struct{}

// dproto is the dissemination protocol at one node.
type dproto struct {
	id      core.NodeID
	cfg     *dcfg
	pending []int // children still to serve, largest subtree first
	got     bool
	value   Value
}

type dcfg struct {
	tree *Tree
}

var _ core.Protocol = (*dproto)(nil)

func (p *dproto) Init(core.Env) {}

func (p *dproto) LinkEvent(core.Env, core.Port) {}

func (p *dproto) Deliver(env core.Env, pkt core.Packet) {
	switch m := pkt.Payload.(type) {
	case *dValue:
		if p.got {
			panic(fmt.Sprintf("globalfn: node %d received the value twice", p.id))
		}
		p.got = true
		p.value = m.Value
		// Serve children newest-attached first: the ⊕ construction attaches
		// the largest remaining subtree last, and the largest subtree needs
		// the earliest send.
		ch := p.cfg.tree.Children[p.id]
		p.pending = make([]int, 0, len(ch))
		for i := len(ch) - 1; i >= 0; i-- {
			p.pending = append(p.pending, ch[i])
		}
		p.sendNext(env)
	case *dTick:
		p.sendNext(env)
	}
}

// sendNext emits one child message and, if more remain, a self-reminder —
// one real message per activation.
func (p *dproto) sendNext(env core.Env) {
	if len(p.pending) == 0 {
		return
	}
	child := p.pending[0]
	p.pending = p.pending[1:]
	port, ok := env.PortToward(core.NodeID(child))
	if !ok {
		panic(fmt.Sprintf("globalfn: node %d not adjacent to child %d", p.id, child))
	}
	if err := env.Send(anr.Direct([]anr.ID{port.Local}), &dValue{Value: p.value}); err != nil {
		panic(fmt.Sprintf("globalfn: disseminate: %v", err))
	}
	if len(p.pending) > 0 {
		if err := env.Send(anr.Local(), &dTick{}); err != nil {
			panic(fmt.Sprintf("globalfn: self tick: %v", err))
		}
	}
}

// DissemResult reports one dissemination run.
type DissemResult struct {
	// Finish is the virtual time at which the last node held the value.
	Finish Time
	// Reached counts nodes holding the value at the end (including the
	// root).
	Reached int
	Metrics core.Metrics
}

// ErrNotReached is returned when some node never received the value.
var ErrNotReached = errors.New("globalfn: dissemination did not reach every node")

// Disseminate runs one-to-all dissemination of value from tree node 0 over
// the tree with exact worst-case delays and one message per activation.
func Disseminate(t *Tree, p Params, value Value) (DissemResult, error) {
	if t.Size == 0 {
		return DissemResult{}, ErrEmptyTree
	}
	if p.C < 0 || p.P < 0 {
		return DissemResult{}, ErrBadParams
	}
	g := graph.New(t.Size)
	for id := 1; id < t.Size; id++ {
		g.MustAddEdge(core.NodeID(id), core.NodeID(t.Parent[id]))
	}
	cfg := &dcfg{tree: t}
	protos := make([]*dproto, t.Size)
	net := sim.New(g, func(id core.NodeID) core.Protocol {
		pr := &dproto{id: id, cfg: cfg}
		protos[id] = pr
		return pr
	}, sim.WithDelays(core.Time(p.C), core.Time(p.P)), sim.WithDmax(t.Size))
	net.Inject(0, 0, &dValue{Value: value})
	finish, err := net.Run()
	if err != nil {
		return DissemResult{}, err
	}
	reached := 0
	for _, pr := range protos {
		if pr.got {
			if pr.value != value {
				return DissemResult{}, fmt.Errorf("globalfn: node %d got %d, want %d", pr.id, pr.value, value)
			}
			reached++
		}
	}
	if reached != t.Size {
		return DissemResult{}, fmt.Errorf("%w (%d of %d)", ErrNotReached, reached, t.Size)
	}
	return DissemResult{Finish: Time(finish), Reached: reached, Metrics: net.Metrics()}, nil
}
